package bicc

import (
	"reflect"
	"testing"
	"testing/quick"

	"spantree/internal/gen"
	"spantree/internal/graph"
	"spantree/internal/xrand"
)

// bruteComponents counts components of g with the vertices in removed
// deleted.
func bruteComponents(g *graph.Graph, removedV graph.VID, removedE *graph.Edge) int {
	n := g.NumVertices()
	uf := graph.NewUnionFind(n)
	alive := n
	if removedV >= 0 {
		alive--
	}
	for _, e := range g.Edges() {
		if removedV >= 0 && (e.U == removedV || e.V == removedV) {
			continue
		}
		if removedE != nil && e == *removedE {
			continue
		}
		uf.Union(e.U, e.V)
	}
	// Count sets among alive vertices.
	seen := map[graph.VID]bool{}
	for v := 0; v < n; v++ {
		if removedV >= 0 && graph.VID(v) == removedV {
			continue
		}
		seen[uf.Find(graph.VID(v))] = true
	}
	_ = alive
	return len(seen)
}

func randomSparse(seed uint64, n, m int) *graph.Graph {
	r := xrand.New(seed)
	b := graph.NewBuilder(n)
	for i := 0; i < m && n > 1; i++ {
		b.AddEdge(r.Int31n(int32(n)), r.Int31n(int32(n)))
	}
	return b.Build()
}

func TestArticulationPointsMatchBruteForce(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint16) bool {
		n := int(nRaw%40) + 2
		g := randomSparse(seed, n, int(mRaw%80))
		res := Compute(g)
		base := bruteComponents(g, -1, nil)
		for v := 0; v < n; v++ {
			want := false
			if g.Degree(graph.VID(v)) > 0 {
				want = bruteComponents(g, graph.VID(v), nil) > base
			}
			if res.IsArticulation(graph.VID(v)) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestBridgesMatchBruteForce(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint16) bool {
		n := int(nRaw%40) + 2
		g := randomSparse(seed, n, int(mRaw%80))
		res := Compute(g)
		base := bruteComponents(g, -1, nil)
		bridges := map[graph.Edge]bool{}
		for _, e := range res.Bridges {
			bridges[e] = true
		}
		for _, e := range g.Edges() {
			e := e
			want := bruteComponents(g, -1, &e) > base
			if bridges[e] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestBlocksPartitionEdges(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint16) bool {
		n := int(nRaw%60) + 1
		g := randomSparse(seed, n, int(mRaw%120))
		res := Compute(g)
		if len(res.CompOfEdge) != g.NumEdges() {
			return false
		}
		seenComp := map[int32]bool{}
		for _, c := range res.CompOfEdge {
			if c < 0 || int(c) >= res.NumComponents {
				return false // every edge belongs to exactly one block
			}
			seenComp[c] = true
		}
		return len(seenComp) == res.NumComponents
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestBlocksAreBiconnectedAndMeetInOneVertex(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomSparse(seed, 30, 50)
		res := Compute(g)
		// Gather each block's edges and vertices.
		blockEdges := make([][]graph.Edge, res.NumComponents)
		blockVerts := make([]map[graph.VID]bool, res.NumComponents)
		for i := range blockVerts {
			blockVerts[i] = map[graph.VID]bool{}
		}
		for i, e := range g.Edges() {
			c := res.CompOfEdge[i]
			blockEdges[c] = append(blockEdges[c], e)
			blockVerts[c][e.U] = true
			blockVerts[c][e.V] = true
		}
		// Two distinct blocks share at most one vertex (block maximality).
		for a := 0; a < res.NumComponents; a++ {
			for b := a + 1; b < res.NumComponents; b++ {
				shared := 0
				for v := range blockVerts[a] {
					if blockVerts[b][v] {
						shared++
					}
				}
				if shared > 1 {
					return false
				}
			}
		}
		// A block with >= 2 edges has no internal cut vertex: removing any
		// one vertex leaves the block's remaining edges connected.
		for c := 0; c < res.NumComponents; c++ {
			es := blockEdges[c]
			if len(es) < 2 {
				continue
			}
			for cut := range blockVerts[c] {
				uf := graph.NewUnionFind(g.NumVertices())
				var rep graph.VID = -1
				vertsLeft := map[graph.VID]bool{}
				for _, e := range es {
					if e.U == cut || e.V == cut {
						vertsLeft[e.U] = true
						vertsLeft[e.V] = true
						continue
					}
					uf.Union(e.U, e.V)
					rep = e.U
					vertsLeft[e.U] = true
					vertsLeft[e.V] = true
				}
				delete(vertsLeft, cut)
				if rep < 0 {
					continue // all edges touch cut: trivially fine
				}
				for v := range vertsLeft {
					if !uf.Same(v, rep) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestKnownShapes(t *testing.T) {
	// Chain: every edge is its own block and a bridge; every interior
	// vertex is an articulation point.
	chain := gen.Chain(10)
	res := Compute(chain)
	if res.NumComponents != 9 || len(res.Bridges) != 9 {
		t.Fatalf("chain: %d blocks, %d bridges", res.NumComponents, len(res.Bridges))
	}
	if len(res.ArticulationPoints) != 8 {
		t.Fatalf("chain: %d articulation points, want 8", len(res.ArticulationPoints))
	}

	// Cycle: one block, no bridges, no articulation points.
	cyc := gen.Cycle(10)
	res = Compute(cyc)
	if res.NumComponents != 1 || len(res.Bridges) != 0 || len(res.ArticulationPoints) != 0 {
		t.Fatalf("cycle: %d blocks, %d bridges, %d arts",
			res.NumComponents, len(res.Bridges), len(res.ArticulationPoints))
	}

	// Two triangles sharing a vertex ("bowtie"): two blocks, one
	// articulation point, no bridges.
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	b.AddEdge(4, 2)
	bow := b.Build()
	res = Compute(bow)
	if res.NumComponents != 2 || len(res.Bridges) != 0 {
		t.Fatalf("bowtie: %d blocks, %d bridges", res.NumComponents, len(res.Bridges))
	}
	if len(res.ArticulationPoints) != 1 || res.ArticulationPoints[0] != 2 {
		t.Fatalf("bowtie articulation points: %v", res.ArticulationPoints)
	}
	if res.EdgeComponent(0, 1) != res.EdgeComponent(2, 0) {
		t.Fatal("triangle edges split across blocks")
	}
	if res.EdgeComponent(0, 1) == res.EdgeComponent(3, 4) {
		t.Fatal("the two triangles merged into one block")
	}
	if res.EdgeComponent(0, 4) != -1 {
		t.Fatal("nonexistent edge got a block")
	}

	// Complete graph: a single block.
	if res := Compute(gen.Complete(8)); res.NumComponents != 1 {
		t.Fatalf("K8: %d blocks", res.NumComponents)
	}

	// Empty / singleton.
	if res := Compute(gen.Chain(0)); res.NumComponents != 0 {
		t.Fatal("empty graph has blocks")
	}
	if res := Compute(gen.Chain(1)); res.NumComponents != 0 || len(res.ArticulationPoints) != 0 {
		t.Fatal("singleton graph decomposition wrong")
	}
}

func TestDeepChainNoStackOverflow(t *testing.T) {
	res := Compute(gen.Chain(1 << 18))
	if res.NumComponents != 1<<18-1 {
		t.Fatalf("deep chain blocks = %d", res.NumComponents)
	}
}

// TestComputePMatchesSequential pins the determinism contract of the
// component-parallel driver: whatever p, the decomposition — block ids
// included — is byte-identical to the sequential scan's, because each
// component's DFS starts from the same smallest vertex and the local
// block ids are renumbered in smallest-vertex component order.
func TestComputePMatchesSequential(t *testing.T) {
	g := graph.Union(gen.Chain(300), gen.Cycle(64), gen.Star(40),
		randomSparse(7, 120, 200), gen.Chain(1), gen.Complete(6))
	want := Compute(g)
	for _, p := range []int{2, 3, 4, 8} {
		got := ComputeP(g, Options{NumProcs: p})
		if got.NumComponents != want.NumComponents {
			t.Fatalf("p=%d: %d blocks, want %d", p, got.NumComponents, want.NumComponents)
		}
		if !reflect.DeepEqual(got.CompOfEdge, want.CompOfEdge) {
			t.Fatalf("p=%d: CompOfEdge differs", p)
		}
		if !reflect.DeepEqual(got.ArticulationPoints, want.ArticulationPoints) {
			t.Fatalf("p=%d: articulation points differ", p)
		}
		if !reflect.DeepEqual(got.Bridges, want.Bridges) {
			t.Fatalf("p=%d: bridges differ", p)
		}
	}
}
