// Package ears computes a chain (ear) decomposition of an undirected
// graph — the second application the paper's opening sentence motivates
// spanning trees with ("an important building block for many graph
// algorithms, for example, biconnected components and ear
// decomposition").
//
// The implementation is Schmidt's chain decomposition: a DFS spanning
// tree is computed, and then for every back edge, taken at its ancestor
// endpoint in DFS order, a chain is emitted consisting of the back edge
// followed by the tree path from the descendant endpoint upward until
// the first already-visited vertex. For a 2-edge-connected graph the
// chains form an ear decomposition (the first chain of each component is
// a cycle, every later chain is an ear whose endpoints lie on earlier
// chains and whose interior vertices are new); in general:
//
//   - an edge belongs to no chain exactly when it is a bridge;
//   - a connected graph is 2-edge-connected iff it has no bridge;
//   - a connected graph with at least three vertices is biconnected iff
//     its decomposition is non-empty and exactly one chain is a cycle.
package ears

import (
	"spantree/internal/graph"
)

// Chain is one chain of the decomposition: a sequence of at least two
// vertices. The first edge (Chain[0], Chain[1]) is a back edge of the
// DFS tree; the remaining edges are tree edges. A chain is a cycle when
// its first and last vertices coincide.
type Chain []graph.VID

// IsCycle reports whether the chain starts and ends at the same vertex.
func (c Chain) IsCycle() bool {
	return len(c) >= 3 && c[0] == c[len(c)-1]
}

// Edges returns the chain's edges in order.
func (c Chain) Edges() []graph.Edge {
	out := make([]graph.Edge, 0, len(c)-1)
	for i := 1; i < len(c); i++ {
		out = append(out, graph.Edge{U: c[i-1], V: c[i]}.Canon())
	}
	return out
}

// Decomposition is the result of Compute.
type Decomposition struct {
	// Chains lists the chains in Schmidt order (ancestor endpoints in
	// DFS order); within a 2-edge-connected component this order is a
	// valid ear order.
	Chains []Chain
	// Bridges lists the edges covered by no chain, in canonical sorted
	// order. By Schmidt's theorem these are exactly the graph's bridges.
	Bridges []graph.Edge
}

// Compute returns the chain decomposition of g.
func Compute(g *graph.Graph) *Decomposition {
	n := g.NumVertices()
	disc := make([]int32, n) // DFS discovery order, 0 = undiscovered
	parent := make([]graph.VID, n)
	order := make([]graph.VID, 0, n) // vertices in DFS order
	for i := range parent {
		parent[i] = graph.None
	}

	// Iterative DFS over all components.
	type frame struct {
		v  graph.VID
		ni int
	}
	var stack []frame
	time := int32(0)
	for s := 0; s < n; s++ {
		if disc[s] != 0 {
			continue
		}
		time++
		disc[s] = time
		order = append(order, graph.VID(s))
		stack = append(stack[:0], frame{graph.VID(s), 0})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			nb := g.Neighbors(f.v)
			if f.ni >= len(nb) {
				stack = stack[:len(stack)-1]
				continue
			}
			w := nb[f.ni]
			f.ni++
			if disc[w] == 0 {
				parent[w] = f.v
				time++
				disc[w] = time
				order = append(order, w)
				stack = append(stack, frame{w, 0})
			}
		}
	}

	// Back edges bucketed at their ancestor endpoint. In an undirected
	// DFS every non-tree edge joins an ancestor-descendant pair.
	backFrom := make([][]graph.VID, n)
	for u := 0; u < n; u++ {
		for _, w := range g.Neighbors(graph.VID(u)) {
			if parent[u] == w || parent[w] == graph.VID(u) {
				continue // tree edge
			}
			if disc[u] < disc[w] {
				backFrom[u] = append(backFrom[u], w)
			}
		}
	}

	d := &Decomposition{}
	visited := make([]bool, n)
	treeEdgeUsed := make([]bool, n) // edge {v, parent[v]} keyed by child v
	for _, v := range order {
		for _, w := range backFrom[v] {
			visited[v] = true
			chain := Chain{v, w}
			cur := w
			for !visited[cur] {
				visited[cur] = true
				cur = parent[cur]
				treeEdgeUsed[chain[len(chain)-1]] = true
				chain = append(chain, cur)
			}
			d.Chains = append(d.Chains, chain)
		}
	}

	// Bridges: tree edges not used by any chain. (Back edges are always
	// in the chain that starts with them.)
	for v := 0; v < n; v++ {
		if parent[v] != graph.None && !treeEdgeUsed[v] {
			d.Bridges = append(d.Bridges, graph.Edge{U: graph.VID(v), V: parent[v]}.Canon())
		}
	}
	sortEdges(d.Bridges)
	return d
}

func sortEdges(es []graph.Edge) {
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && less(es[j], es[j-1]); j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

func less(a, b graph.Edge) bool {
	if a.U != b.U {
		return a.U < b.U
	}
	return a.V < b.V
}

// TwoEdgeConnected reports whether g is connected with no bridges
// (trivially true for the empty and single-vertex graphs).
func TwoEdgeConnected(g *graph.Graph) bool {
	if !graph.IsConnected(g) {
		return false
	}
	return len(Compute(g).Bridges) == 0
}

// Biconnected reports whether g is biconnected, via Schmidt's
// criterion: connected, decomposition non-empty, and exactly one chain
// is a cycle. Graphs with fewer than three vertices follow the
// convention that K2 and K1 are biconnected and the empty graph is not
// a meaningful input (reported as biconnected when connected).
func Biconnected(g *graph.Graph) bool {
	if !graph.IsConnected(g) {
		return false
	}
	if g.NumVertices() < 3 {
		return true
	}
	d := Compute(g)
	if len(d.Bridges) > 0 || len(d.Chains) == 0 {
		return false
	}
	cycles := 0
	for _, c := range d.Chains {
		if c.IsCycle() {
			cycles++
		}
	}
	return cycles == 1
}
