package ears

import (
	"testing"
	"testing/quick"

	"spantree/internal/bicc"
	"spantree/internal/gen"
	"spantree/internal/graph"
	"spantree/internal/xrand"
)

func randomSparse(seed uint64, n, m int) *graph.Graph {
	r := xrand.New(seed)
	b := graph.NewBuilder(n)
	for i := 0; i < m && n > 1; i++ {
		b.AddEdge(r.Int31n(int32(n)), r.Int31n(int32(n)))
	}
	return b.Build()
}

func TestBridgesMatchBicc(t *testing.T) {
	// Schmidt's theorem: the edges in no chain are exactly the bridges.
	// bicc computes bridges independently (low-links), so the two must
	// agree on arbitrary graphs.
	f := func(seed uint64, nRaw, mRaw uint16) bool {
		n := int(nRaw%80) + 1
		g := randomSparse(seed, n, int(mRaw%160))
		got := Compute(g).Bridges
		want := bicc.Compute(g).Bridges
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestChainsPartitionNonBridgeEdges(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint16) bool {
		n := int(nRaw%60) + 1
		g := randomSparse(seed, n, int(mRaw%150))
		d := Compute(g)
		seen := map[graph.Edge]int{}
		for _, c := range d.Chains {
			for _, e := range c.Edges() {
				seen[e]++
			}
		}
		// Every chain edge must be a real graph edge, used exactly once.
		for e, cnt := range seen {
			if cnt != 1 || !g.HasEdge(e.U, e.V) {
				return false
			}
		}
		// Chains + bridges = all edges.
		if len(seen)+len(d.Bridges) != g.NumEdges() {
			return false
		}
		for _, b := range d.Bridges {
			if _, dup := seen[b]; dup {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEarPropertiesOnTwoEdgeConnectedGraphs(t *testing.T) {
	// On a 2-edge-connected graph the chains are an ear decomposition:
	// the first chain is a cycle; every later chain has both endpoints
	// on earlier chains and fresh interior vertices.
	inputs := []*graph.Graph{
		gen.Cycle(12),
		gen.Complete(7),
		gen.Torus2D(5, 5),
		mustTwoEdgeConnected(t, 1),
		mustTwoEdgeConnected(t, 2),
		mustTwoEdgeConnected(t, 3),
	}
	for _, g := range inputs {
		if !TwoEdgeConnected(g) {
			t.Fatalf("%v: test input not 2-edge-connected", g)
		}
		d := Compute(g)
		if len(d.Bridges) != 0 {
			t.Fatalf("%v: bridges in a 2-edge-connected graph", g)
		}
		onEars := make([]bool, g.NumVertices())
		for i, c := range d.Chains {
			if i == 0 {
				if !c.IsCycle() {
					t.Fatalf("%v: first chain is not a cycle", g)
				}
				for _, v := range c {
					onEars[v] = true
				}
				continue
			}
			first, last := c[0], c[len(c)-1]
			if !onEars[first] || !onEars[last] {
				t.Fatalf("%v: chain %d endpoints %d,%d not on earlier ears", g, i, first, last)
			}
			for _, v := range c[1 : len(c)-1] {
				if onEars[v] {
					t.Fatalf("%v: chain %d interior vertex %d already on an ear", g, i, v)
				}
			}
			for _, v := range c {
				onEars[v] = true
			}
		}
		// The decomposition covers every vertex of a 2-edge-connected
		// graph with >= 2 vertices.
		for v, ok := range onEars {
			if !ok && g.Degree(graph.VID(v)) > 0 {
				t.Fatalf("%v: vertex %d on no ear", g, v)
			}
		}
	}
}

// mustTwoEdgeConnected builds a random 2-edge-connected graph: a cycle
// plus random chords.
func mustTwoEdgeConnected(t *testing.T, seed uint64) *graph.Graph {
	t.Helper()
	r := xrand.New(seed)
	n := 30 + r.Intn(40)
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(graph.VID(i), graph.VID((i+1)%n))
	}
	for i := 0; i < n; i++ {
		b.AddEdge(r.Int31n(int32(n)), r.Int31n(int32(n)))
	}
	return b.Build()
}

func TestTwoEdgeConnectedBruteForce(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint16) bool {
		n := int(nRaw%25) + 2
		g := randomSparse(seed, n, int(mRaw%60))
		want := graph.IsConnected(g)
		if want {
			// Brute force: no single edge removal disconnects.
			for _, e := range g.Edges() {
				var rest []graph.Edge
				for _, f := range g.Edges() {
					if f != e {
						rest = append(rest, f)
					}
				}
				sub, err := graph.FromEdges(n, rest)
				if err != nil {
					return false
				}
				if !graph.IsConnected(sub) {
					want = false
					break
				}
			}
		}
		return TwoEdgeConnected(g) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestBiconnectedMatchesBicc(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint16) bool {
		n := int(nRaw%30) + 3
		g := randomSparse(seed, n, int(mRaw%80))
		want := graph.IsConnected(g) &&
			len(bicc.Compute(g).ArticulationPoints) == 0 &&
			len(bicc.Compute(g).Bridges) == 0
		return Biconnected(g) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestKnownShapes(t *testing.T) {
	// Cycle: one chain, a cycle; biconnected.
	d := Compute(gen.Cycle(8))
	if len(d.Chains) != 1 || !d.Chains[0].IsCycle() || len(d.Bridges) != 0 {
		t.Fatalf("cycle decomposition: %d chains, %d bridges", len(d.Chains), len(d.Bridges))
	}
	if !Biconnected(gen.Cycle(8)) {
		t.Fatal("cycle not biconnected")
	}

	// Chain: no chains, all edges bridges; not 2-edge-connected.
	d = Compute(gen.Chain(10))
	if len(d.Chains) != 0 || len(d.Bridges) != 9 {
		t.Fatalf("path decomposition: %d chains, %d bridges", len(d.Chains), len(d.Bridges))
	}
	if TwoEdgeConnected(gen.Chain(10)) || Biconnected(gen.Chain(10)) {
		t.Fatal("path misclassified")
	}

	// Bowtie (two triangles sharing a vertex): 2-edge-connected but not
	// biconnected; two cycles in the decomposition.
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	b.AddEdge(4, 2)
	bow := b.Build()
	if !TwoEdgeConnected(bow) {
		t.Fatal("bowtie should be 2-edge-connected")
	}
	if Biconnected(bow) {
		t.Fatal("bowtie should not be biconnected")
	}
	cycles := 0
	for _, c := range Compute(bow).Chains {
		if c.IsCycle() {
			cycles++
		}
	}
	if cycles != 2 {
		t.Fatalf("bowtie decomposition has %d cycles, want 2", cycles)
	}

	// Tiny cases.
	if !Biconnected(gen.Complete(2)) || !Biconnected(gen.Chain(1)) {
		t.Fatal("tiny-case conventions broken")
	}
	if Biconnected(graph.Union(gen.Cycle(3), gen.Cycle(3))) {
		t.Fatal("disconnected graph reported biconnected")
	}
}

func TestDeepGraphNoOverflow(t *testing.T) {
	d := Compute(gen.Cycle(1 << 18))
	if len(d.Chains) != 1 || !d.Chains[0].IsCycle() {
		t.Fatal("huge cycle decomposition wrong")
	}
}
