package wsq

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"spantree/internal/xrand"
)

func TestStealHalfFIFO(t *testing.T) {
	q := NewStealHalf(4)
	for i := int32(0); i < 100; i++ {
		q.Push(i)
	}
	if q.Len() != 100 {
		t.Fatalf("Len = %d", q.Len())
	}
	for i := int32(0); i < 100; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("pop %d: got %d ok=%v", i, v, ok)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop from empty succeeded")
	}
}

func TestStealHalfStealTakesHalfFromFront(t *testing.T) {
	q := NewStealHalf(4)
	for i := int32(0); i < 10; i++ {
		q.Push(i)
	}
	loot := q.Steal(nil)
	if len(loot) != 5 {
		t.Fatalf("stole %d, want 5", len(loot))
	}
	for i, v := range loot {
		if v != int32(i) {
			t.Fatalf("loot[%d] = %d (steals must come from the front)", i, v)
		}
	}
	if q.Len() != 5 {
		t.Fatalf("remaining %d", q.Len())
	}
	// Odd sizes round up.
	q2 := NewStealHalf(4)
	q2.Push(1)
	if loot := q2.Steal(nil); len(loot) != 1 {
		t.Fatalf("stole %d from 1-queue, want 1", len(loot))
	}
	if loot := q2.Steal(nil); len(loot) != 0 {
		t.Fatalf("stole %d from empty, want 0", len(loot))
	}
}

func TestStealHalfPushBatchAndDrain(t *testing.T) {
	q := NewStealHalf(4)
	q.PushBatch([]int32{1, 2, 3})
	q.PushBatch(nil)
	q.PushBatch([]int32{4, 5})
	got := q.Drain(nil)
	want := []int32{1, 2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("drained %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drained %v", got)
		}
	}
	if q.Len() != 0 {
		t.Fatal("drain left elements")
	}
}

func TestStealHalfGrowthAndCompaction(t *testing.T) {
	q := NewStealHalf(16)
	// Interleave pushes and pops to force head/tail wrapping and
	// compaction paths.
	next, expect := int32(0), int32(0)
	r := xrand.New(1)
	for step := 0; step < 10000; step++ {
		if r.Bool() || q.Len() == 0 {
			q.Push(next)
			next++
		} else {
			v, ok := q.Pop()
			if !ok || v != expect {
				t.Fatalf("step %d: got %d ok=%v want %d", step, v, ok, expect)
			}
			expect++
		}
	}
	for expect < next {
		v, ok := q.Pop()
		if !ok || v != expect {
			t.Fatalf("tail drain: got %d ok=%v want %d", v, ok, expect)
		}
		expect++
	}
}

// TestStealHalfConservation: under concurrent owner pops and thief
// steals, every pushed element is consumed exactly once.
func TestStealHalfConservation(t *testing.T) {
	const n = 200000
	const thieves = 4
	q := NewStealHalf(64)
	var consumed sync.Map
	var total atomic.Int64

	consume := func(v int32) {
		if _, dup := consumed.LoadOrStore(v, true); dup {
			t.Errorf("element %d consumed twice", v)
		}
		total.Add(1)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1 + thieves)
	go func() { // owner: pushes all, pops some
		defer wg.Done()
		for i := int32(0); i < n; i++ {
			q.Push(i)
			if i%3 == 0 {
				if v, ok := q.Pop(); ok {
					consume(v)
				}
			}
		}
	}()
	for th := 0; th < thieves; th++ {
		go func() {
			defer wg.Done()
			var buf []int32
			for !stop.Load() {
				buf = q.Steal(buf[:0])
				for _, v := range buf {
					consume(v)
				}
			}
		}()
	}
	// Everything pushed is consumed exactly once; wait for the count,
	// then stop the thieves.
	for total.Load() < n {
		runtime.Gosched()
	}
	stop.Store(true)
	wg.Wait()
	if total.Load() != n {
		t.Fatalf("consumed %d, want %d", total.Load(), n)
	}
	if q.Len() != 0 {
		t.Fatalf("queue still holds %d elements", q.Len())
	}
}

func TestChaseLevLIFOOwner(t *testing.T) {
	d := NewChaseLev(8)
	for i := int32(0); i < 100; i++ {
		d.Push(i)
	}
	if d.Len() != 100 {
		t.Fatalf("Len = %d", d.Len())
	}
	for i := int32(99); i >= 0; i-- {
		v, ok := d.Pop()
		if !ok || v != i {
			t.Fatalf("pop got %d ok=%v want %d", v, ok, i)
		}
	}
	if _, ok := d.Pop(); ok {
		t.Fatal("pop from empty succeeded")
	}
	if _, ok := d.Steal(); ok {
		t.Fatal("steal from empty succeeded")
	}
}

func TestChaseLevStealFIFO(t *testing.T) {
	d := NewChaseLev(8)
	for i := int32(0); i < 10; i++ {
		d.Push(i)
	}
	for i := int32(0); i < 5; i++ {
		v, ok := d.Steal()
		if !ok || v != i {
			t.Fatalf("steal got %d ok=%v want %d", v, ok, i)
		}
	}
	// Owner pops the rest LIFO.
	for i := int32(9); i >= 5; i-- {
		v, ok := d.Pop()
		if !ok || v != i {
			t.Fatalf("pop got %d ok=%v want %d", v, ok, i)
		}
	}
}

func TestChaseLevGrowth(t *testing.T) {
	d := NewChaseLev(1) // rounds up to 64
	for i := int32(0); i < 10000; i++ {
		d.Push(i)
	}
	if d.Len() != 10000 {
		t.Fatalf("Len = %d", d.Len())
	}
	sum := int64(0)
	for {
		v, ok := d.Pop()
		if !ok {
			break
		}
		sum += int64(v)
	}
	if sum != 10000*9999/2 {
		t.Fatalf("sum %d", sum)
	}
}

// TestChaseLevConservation: one owner (push/pop) and several thieves;
// every element is consumed exactly once.
func TestChaseLevConservation(t *testing.T) {
	const n = 100000
	const thieves = 4
	d := NewChaseLev(64)
	seen := make([]int32, n)
	var total atomic.Int64

	consume := func(v int32) {
		if atomic.AddInt32(&seen[v], 1) != 1 {
			t.Errorf("element %d consumed twice", v)
		}
		total.Add(1)
	}

	var ownerDone atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1 + thieves)
	go func() {
		defer wg.Done()
		for i := int32(0); i < n; i++ {
			d.Push(i)
			if i%2 == 0 {
				if v, ok := d.Pop(); ok {
					consume(v)
				}
			}
		}
		// Owner drains what's left; thieves race for the same elements.
		for {
			v, ok := d.Pop()
			if !ok {
				break
			}
			consume(v)
		}
		ownerDone.Store(true)
	}()
	for th := 0; th < thieves; th++ {
		go func() {
			defer wg.Done()
			for !ownerDone.Load() || d.Len() > 0 {
				if v, ok := d.Steal(); ok {
					consume(v)
				}
			}
		}()
	}
	wg.Wait()
	if total.Load() != n {
		t.Fatalf("consumed %d, want %d", total.Load(), n)
	}
}

func TestStealHalfLenRace(t *testing.T) {
	// Len is advertised as a racy snapshot; exercise it while the queue
	// churns to let the race detector confirm it is nevertheless safe.
	q := NewStealHalf(16)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := int32(0); i < 50000; i++ {
			q.Push(i)
			q.Pop()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50000; i++ {
			_ = q.Len()
		}
	}()
	wg.Wait()
}

func TestStealAppendsToProvidedSlice(t *testing.T) {
	q := NewStealHalf(4)
	q.PushBatch([]int32{7, 8, 9, 10})
	base := []int32{1, 2}
	out := q.Steal(base)
	if len(out) != 4 || out[0] != 1 || out[1] != 2 || out[2] != 7 || out[3] != 8 {
		t.Fatalf("Steal append semantics wrong: %v", out)
	}
}

func TestQuickStealHalfSequential(t *testing.T) {
	// Property: any interleaving of push/pop/steal on a single goroutine
	// behaves like a FIFO queue where steal removes a prefix.
	f := func(ops []byte) bool {
		q := NewStealHalf(4)
		var ref []int32
		next := int32(0)
		for _, op := range ops {
			switch op % 3 {
			case 0:
				q.Push(next)
				ref = append(ref, next)
				next++
			case 1:
				v, ok := q.Pop()
				if ok != (len(ref) > 0) {
					return false
				}
				if ok {
					if v != ref[0] {
						return false
					}
					ref = ref[1:]
				}
			case 2:
				loot := q.Steal(nil)
				want := (len(ref) + 1) / 2
				if len(ref) == 0 {
					want = 0
				}
				if len(loot) != want {
					return false
				}
				for i, v := range loot {
					if v != ref[i] {
						return false
					}
				}
				ref = ref[len(loot):]
			}
			if q.Len() != len(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHighWaterOptIn(t *testing.T) {
	// Off by default: pushes are not charged for the accounting.
	q := NewStealHalf(16)
	for i := 0; i < 40; i++ {
		q.Push(int32(i))
	}
	if hw := q.HighWater(); hw != 0 {
		t.Errorf("untracked StealHalf high-water = %d, want 0", hw)
	}

	q = NewStealHalf(16)
	q.TrackHighWater(true)
	for i := 0; i < 40; i++ {
		q.Push(int32(i))
	}
	for i := 0; i < 10; i++ {
		q.Pop()
	}
	q.PushBatch([]int32{1, 2, 3})
	if hw := q.HighWater(); hw != 40 {
		t.Errorf("StealHalf high-water = %d, want 40", hw)
	}

	d := NewChaseLev(16)
	for i := 0; i < 40; i++ {
		d.Push(int32(i))
	}
	if hw := d.HighWater(); hw != 0 {
		t.Errorf("untracked ChaseLev high-water = %d, want 0", hw)
	}

	d = NewChaseLev(16)
	d.TrackHighWater(true)
	for i := 0; i < 40; i++ {
		d.Push(int32(i))
	}
	for i := 0; i < 30; i++ {
		d.Pop()
	}
	d.Push(99)
	if hw := d.HighWater(); hw != 40 {
		t.Errorf("ChaseLev high-water = %d, want 40", hw)
	}
}
