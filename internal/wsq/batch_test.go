package wsq

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestStealHalfPopBatchBasics(t *testing.T) {
	q := NewStealHalf(4)
	if n := q.PopBatch(make([]int32, 8)); n != 0 {
		t.Fatalf("PopBatch on empty queue = %d, want 0", n)
	}
	q.PushBatch([]int32{1, 2, 3, 4, 5})
	if n := q.PopBatch(nil); n != 0 {
		t.Fatalf("PopBatch into empty dst = %d, want 0", n)
	}
	dst := make([]int32, 3)
	if n := q.PopBatch(dst); n != 3 || dst[0] != 1 || dst[1] != 2 || dst[2] != 3 {
		t.Fatalf("PopBatch = %d %v, want 3 [1 2 3]", n, dst)
	}
	if q.Len() != 2 {
		t.Fatalf("Len after partial drain = %d, want 2", q.Len())
	}
	// Larger dst than queue: drains everything, reports the true count.
	dst = make([]int32, 8)
	if n := q.PopBatch(dst); n != 2 || dst[0] != 4 || dst[1] != 5 {
		t.Fatalf("PopBatch = %d %v, want 2 [4 5 ...]", n, dst[:2])
	}
	if q.Len() != 0 {
		t.Fatalf("Len after full drain = %d, want 0", q.Len())
	}
}

// TestStealHalfPopBatchStealStress: the chunked owner hot path (PopBatch
// drains + PushBatch flushes + single pushes) interleaved with stealing
// thieves must consume every element exactly once. Run under -race this
// is the data-race certificate for the batched operations.
func TestStealHalfPopBatchStealStress(t *testing.T) {
	const n = 200000
	const thieves = 4
	q := NewStealHalf(64)
	var consumed sync.Map
	var total atomic.Int64

	consume := func(v int32) {
		if _, dup := consumed.LoadOrStore(v, true); dup {
			t.Errorf("element %d consumed twice", v)
		}
		total.Add(1)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1 + thieves)
	go func() { // owner: pushes all (alternating single and batch), drains chunks
		defer wg.Done()
		chunk := make([]int32, 16)
		batch := make([]int32, 0, 8)
		for i := int32(0); i < n; {
			if i%48 < 8 {
				// Flush a child batch like the traversal's chunk epilogue.
				batch = batch[:0]
				for k := 0; k < 8 && i < n; k++ {
					batch = append(batch, i)
					i++
				}
				q.PushBatch(batch)
			} else {
				q.Push(i)
				i++
			}
			if i%5 == 0 {
				for _, v := range chunk[:q.PopBatch(chunk)] {
					consume(v)
				}
			}
		}
	}()
	for th := 0; th < thieves; th++ {
		go func() {
			defer wg.Done()
			var buf []int32
			for !stop.Load() {
				buf = q.Steal(buf[:0])
				for _, v := range buf {
					consume(v)
				}
			}
		}()
	}
	for total.Load() < n {
		runtime.Gosched()
	}
	stop.Store(true)
	wg.Wait()
	if total.Load() != n {
		t.Fatalf("consumed %d, want %d", total.Load(), n)
	}
	if q.Len() != 0 {
		t.Fatalf("queue still holds %d elements", q.Len())
	}
}

// TestQuickStealHalfBatchedModel model-checks the batched queue against
// a reference slice queue over random op sequences: PushBatch appends a
// run, PopBatch removes a prefix of the requested size, Steal removes
// the front half, and the atomic Len mirror stays exact after every
// (sequential) operation.
func TestQuickStealHalfBatchedModel(t *testing.T) {
	f := func(ops []byte) bool {
		q := NewStealHalf(4)
		var ref []int32
		next := int32(0)
		for _, op := range ops {
			switch op % 5 {
			case 0:
				q.Push(next)
				ref = append(ref, next)
				next++
			case 1:
				size := int(op/5)%7 + 1
				batch := make([]int32, size)
				for i := range batch {
					batch[i] = next
					ref = append(ref, next)
					next++
				}
				q.PushBatch(batch)
			case 2:
				v, ok := q.Pop()
				if ok != (len(ref) > 0) {
					return false
				}
				if ok {
					if v != ref[0] {
						return false
					}
					ref = ref[1:]
				}
			case 3:
				size := int(op/5)%9 + 1
				dst := make([]int32, size)
				got := q.PopBatch(dst)
				want := min(size, len(ref))
				if got != want {
					return false
				}
				for i := 0; i < got; i++ {
					if dst[i] != ref[i] {
						return false
					}
				}
				ref = ref[got:]
			case 4:
				loot := q.Steal(nil)
				want := (len(ref) + 1) / 2
				if len(ref) == 0 {
					want = 0
				}
				if len(loot) != want {
					return false
				}
				for i, v := range loot {
					if v != ref[i] {
						return false
					}
				}
				ref = ref[len(loot):]
			}
			if q.Len() != len(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkStealHalfOwnerPath compares the owner's per-vertex locked
// path (one Pop + one Push per element) against the chunked path (one
// PopBatch + one PushBatch per 64 elements) on an uncontended queue —
// the isolated cost of the lock traffic the chunked drain amortizes.
func BenchmarkStealHalfOwnerPath(b *testing.B) {
	const chunk = 64
	seedQ := func() *StealHalf {
		q := NewStealHalf(1 << 10)
		for i := int32(0); i < chunk; i++ {
			q.Push(i)
		}
		return q
	}
	b.Run("locked-per-vertex", func(b *testing.B) {
		q := seedQ()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			v, _ := q.Pop()
			q.Push(v)
		}
	})
	b.Run("chunked-64", func(b *testing.B) {
		q := seedQ()
		buf := make([]int32, chunk)
		b.ReportAllocs()
		for i := 0; i < b.N; i += chunk {
			n := q.PopBatch(buf)
			q.PushBatch(buf[:n])
		}
	})
}
