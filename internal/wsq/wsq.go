// Package wsq provides the work-stealing queues used by the traversal
// step of the spanning-tree algorithm.
//
// The paper's load-balancing protocol is steal-half: "whenever any
// processor finishes with its own work ... it randomly checks other
// processors' queues. If it finds a non-empty queue, the processor
// steals part of the queue." StealHalf implements exactly that: a FIFO
// ring buffer (the BFS queue of Algorithm 1) whose owner pushes at the
// back and pops at the front, and whose thieves remove half the queue in
// one locked operation. The owner's hot path is chunked — PopBatch
// drains up to a chunk per lock acquisition and PushBatch appends a
// whole batch of children per lock acquisition — so the per-vertex
// mutex traffic of a naive port amortizes to ~2 lock operations per
// chunk.
//
// ChaseLev is the classic lock-free steal-one deque, provided as an
// ablation point: the benchmark suite compares steal-half against
// steal-one to quantify the benefit of bulk stealing on queue-shaped
// frontiers.
package wsq

import (
	"sync"
	"sync/atomic"
)

// StealHalf is a FIFO queue with bulk stealing. All operations are
// guarded by a mutex: the owner's push/pop path is uncontended in the
// common case, and thieves appear only when idle, which matches the
// paper's "lightweight work stealing protocol".
type StealHalf struct {
	mu   sync.Mutex
	buf  []int32
	head int // index of front element
	tail int // index one past back element
	// size == tail-head under mu; a separate atomic mirror lets idle
	// processors scan for victims without taking every lock.
	size atomic.Int64
	// high is the maximum live length the queue ever reached (under mu),
	// the per-worker queue_high_water metric of the observability layer.
	// Maintained only when track is set: the live-length check costs a
	// few percent of traversal time, so it is pay-for-what-you-ask.
	high  int
	track bool
}

// TrackHighWater enables high-water accounting. Call before first use;
// with it off (the default) HighWater reports 0.
func (q *StealHalf) TrackHighWater(on bool) { q.track = on }

// NewStealHalf returns an empty queue with the given initial capacity
// (minimum 16).
func NewStealHalf(capacity int) *StealHalf {
	if capacity < 16 {
		capacity = 16
	}
	return &StealHalf{buf: make([]int32, capacity)}
}

// Len returns the current queue length (racy snapshot, suitable for
// victim selection).
func (q *StealHalf) Len() int { return int(q.size.Load()) }

// Reset empties the queue while retaining its grown buffer, rearming it
// for a new run on a pooled workspace (the capacity a session
// provisioned — or a previous run grew — is the asset being reused).
// The caller must guarantee no owner or thief of a previous run still
// touches the queue.
func (q *StealHalf) Reset() {
	q.mu.Lock()
	q.head, q.tail = 0, 0
	q.high = 0
	q.size.Store(0)
	q.mu.Unlock()
}

// Cap returns the current buffer capacity (for provisioning checks).
func (q *StealHalf) Cap() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buf)
}

// Push appends v at the back of the queue.
func (q *StealHalf) Push(v int32) {
	q.mu.Lock()
	if q.tail == len(q.buf) {
		q.compactOrGrow(1)
	}
	q.buf[q.tail] = v
	q.tail++
	q.size.Add(1)
	if q.track {
		if live := q.tail - q.head; live > q.high {
			q.high = live
		}
	}
	q.mu.Unlock()
}

// PushBatch appends all of vs at the back of the queue.
func (q *StealHalf) PushBatch(vs []int32) {
	if len(vs) == 0 {
		return
	}
	q.mu.Lock()
	if q.tail+len(vs) > len(q.buf) {
		q.compactOrGrow(len(vs))
	}
	copy(q.buf[q.tail:], vs)
	q.tail += len(vs)
	q.size.Add(int64(len(vs)))
	if q.track {
		if live := q.tail - q.head; live > q.high {
			q.high = live
		}
	}
	q.mu.Unlock()
}

// compactOrGrow (with mu held) makes room for extra more elements by
// sliding live elements to the front, doubling the buffer when more
// than half is live.
func (q *StealHalf) compactOrGrow(extra int) {
	live := q.tail - q.head
	need := live + extra
	if need > len(q.buf)/2 {
		newCap := len(q.buf) * 2
		for newCap < need {
			newCap *= 2
		}
		nb := make([]int32, newCap)
		copy(nb, q.buf[q.head:q.tail])
		q.buf = nb
	} else {
		copy(q.buf, q.buf[q.head:q.tail])
	}
	q.head, q.tail = 0, live
}

// HighWater returns the maximum length the queue ever reached.
func (q *StealHalf) HighWater() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.high
}

// PopBatch removes up to len(dst) elements from the front of the queue
// in one locked operation, copying them into dst and returning the
// count (0 when the queue is empty or dst is empty). This is the
// owner's chunked drain: one lock acquisition amortizes over the whole
// chunk, and the atomic size mirror is updated once, so Len stays exact
// at chunk boundaries. Elements moved into dst are no longer visible to
// thieves, exactly as if the owner had popped them one by one.
func (q *StealHalf) PopBatch(dst []int32) int {
	n, _ := q.PopBatchLen(dst)
	return n
}

// PopBatchLen is PopBatch plus the post-drain queue length, read under
// the same lock acquisition. The adaptive chunk controller sizes its
// next drain from the remaining depth, and reading it here gives an
// exact signal without a second synchronized probe of the size mirror.
func (q *StealHalf) PopBatchLen(dst []int32) (n, remaining int) {
	if len(dst) == 0 {
		return 0, q.Len()
	}
	q.mu.Lock()
	n = q.tail - q.head
	if n == 0 {
		q.mu.Unlock()
		return 0, 0
	}
	if n > len(dst) {
		n = len(dst)
	}
	copy(dst, q.buf[q.head:q.head+n])
	q.head += n
	q.size.Add(-int64(n))
	remaining = q.tail - q.head
	q.mu.Unlock()
	return n, remaining
}

// Pop removes and returns the front element, or ok == false when empty.
func (q *StealHalf) Pop() (v int32, ok bool) {
	q.mu.Lock()
	if q.head == q.tail {
		q.mu.Unlock()
		return 0, false
	}
	v = q.buf[q.head]
	q.head++
	q.size.Add(-1)
	q.mu.Unlock()
	return v, true
}

// Steal removes ceil(len/2) elements from the front of the queue in one
// operation, appending them to into and returning the extended slice.
// It returns into unchanged when the queue is empty.
func (q *StealHalf) Steal(into []int32) []int32 {
	q.mu.Lock()
	live := q.tail - q.head
	if live == 0 {
		q.mu.Unlock()
		return into
	}
	take := (live + 1) / 2
	into = append(into, q.buf[q.head:q.head+take]...)
	q.head += take
	q.size.Add(-int64(take))
	q.mu.Unlock()
	return into
}

// Drain removes every element, appending to into.
func (q *StealHalf) Drain(into []int32) []int32 {
	q.mu.Lock()
	into = append(into, q.buf[q.head:q.tail]...)
	q.size.Add(-int64(q.tail - q.head))
	q.head, q.tail = 0, 0
	q.mu.Unlock()
	return into
}

// ChaseLev is the Chase–Lev work-stealing deque: the owner pushes and
// pops at the bottom (LIFO) without locks; thieves steal single elements
// from the top with a CAS.
type ChaseLev struct {
	top    atomic.Int64
	bottom atomic.Int64
	ring   atomic.Pointer[clRing]
	// high mirrors StealHalf.high: the deque's maximum observed length.
	// Owner-only writes, so a load-compare-store suffices. Maintained
	// only when track is set (set before first use, read-only after).
	high  atomic.Int64
	track bool
}

// TrackHighWater enables high-water accounting. Call before first use;
// with it off (the default) HighWater reports 0.
func (d *ChaseLev) TrackHighWater(on bool) { d.track = on }

type clRing struct {
	mask int64
	buf  []int32
}

func newCLRing(capacity int64) *clRing {
	return &clRing{mask: capacity - 1, buf: make([]int32, capacity)}
}

func (r *clRing) get(i int64) int32    { return r.buf[i&r.mask] }
func (r *clRing) put(i int64, v int32) { r.buf[i&r.mask] = v }
func (r *clRing) grow(b, t int64) *clRing {
	nr := newCLRing((r.mask + 1) * 2)
	for i := t; i < b; i++ {
		nr.put(i, r.get(i))
	}
	return nr
}

// NewChaseLev returns an empty deque (initial capacity rounded up to a
// power of two, minimum 64).
func NewChaseLev(capacity int) *ChaseLev {
	c := int64(64)
	for c < int64(capacity) {
		c *= 2
	}
	d := &ChaseLev{}
	d.ring.Store(newCLRing(c))
	return d
}

// Len returns a racy snapshot of the deque size.
func (d *ChaseLev) Len() int {
	n := d.bottom.Load() - d.top.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}

// Push appends v at the bottom. Owner-only.
func (d *ChaseLev) Push(v int32) {
	b := d.bottom.Load()
	t := d.top.Load()
	r := d.ring.Load()
	if b-t > r.mask {
		r = r.grow(b, t)
		d.ring.Store(r)
	}
	r.put(b, v)
	d.bottom.Store(b + 1)
	if d.track {
		if n := b + 1 - t; n > d.high.Load() {
			d.high.Store(n)
		}
	}
}

// HighWater returns the maximum length the deque ever reached.
func (d *ChaseLev) HighWater() int { return int(d.high.Load()) }

// Pop removes and returns the bottom element. Owner-only.
func (d *ChaseLev) Pop() (int32, bool) {
	b := d.bottom.Load() - 1
	r := d.ring.Load()
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: restore.
		d.bottom.Store(t)
		return 0, false
	}
	v := r.get(b)
	if b > t {
		return v, true
	}
	// Single element left: race with thieves via CAS on top.
	won := d.top.CompareAndSwap(t, t+1)
	d.bottom.Store(t + 1)
	if won {
		return v, true
	}
	return 0, false
}

// Steal removes and returns the top element. Any thread.
func (d *ChaseLev) Steal() (int32, bool) {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return 0, false
	}
	r := d.ring.Load()
	v := r.get(t)
	if d.top.CompareAndSwap(t, t+1) {
		return v, true
	}
	return 0, false
}
