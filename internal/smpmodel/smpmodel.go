// Package smpmodel implements the Helman–JáJá SMP complexity model the
// paper uses for its analysis (Section 3): an algorithm's cost is the
// triplet
//
//	T(n,p) = ( T_M(n,p) ; T_C(n,p) ; B(n,p) )
//
// where T_M is the maximum number of non-contiguous main-memory accesses
// by any processor, T_C the maximum local computation, and B the number
// of barrier synchronizations. Every algorithm in this library is
// instrumented with per-processor probes that count non-contiguous
// accesses, contiguous (streaming) accesses, and local operations; a
// Machine profile converts the triplet into modeled time.
//
// The modeled time is how this reproduction regenerates the paper's
// figures on hosts with few cores: the reproduction machine has a single
// physical CPU, so real wall-clock speedup is unobservable, but the
// model — the same one the paper reasons with — preserves who wins, by
// what factor, and where the crossovers fall. Wall-clock benchmarks are
// additionally provided in bench_test.go for multi-core hosts.
package smpmodel

import (
	"fmt"
	"time"
)

// Counters accumulates one virtual processor's work. The struct is
// padded to a cache line so adjacent processors' counters do not
// false-share.
type Counters struct {
	// NonContig counts cache-unfriendly accesses: pointer chases, random
	// indexing into vertex-sized arrays, queue-head misses.
	NonContig int64
	// Contig counts streaming accesses: sequential scans of adjacency
	// lists or edge arrays after the first touch.
	Contig int64
	// Ops counts local computation (comparisons, arithmetic) not already
	// implied by an access.
	Ops int64
	// NonContigCompact and ContigCompact count the same two access
	// classes when made through the compact uint32 CSR layout
	// (graph.CSR32): half-width elements double cache-line and TLB
	// utilization, so a Machine may price them below the wide rates.
	NonContigCompact int64
	ContigCompact    int64
	// BottomUpScans counts vertices inspected by bottom-up sweeps: the
	// direction-optimized traversal streams over the parent array in
	// vertex order, so each inspection is a contiguous access — the
	// whole point of switching direction is trading non-contiguous
	// queue traffic for this class.
	BottomUpScans int64
	// CASOps counts atomic compare-and-swap attempts (the union-find
	// hook elections). A CAS is a non-contiguous access plus the
	// read-modify-write and coherence cost of the locked cycle, so a
	// Machine prices it above the plain non-contiguous rate.
	CASOps int64
	// PointerChases counts serially dependent random accesses — the
	// union-find parent walks, where each load's address comes from the
	// previous load. They miss like non-contiguous accesses but cannot
	// overlap, which is the memory-traffic contrast between the
	// edge-centric family and the traversal's independent queue misses.
	PointerChases int64
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.NonContig += other.NonContig
	c.Contig += other.Contig
	c.Ops += other.Ops
	c.NonContigCompact += other.NonContigCompact
	c.ContigCompact += other.ContigCompact
	c.BottomUpScans += other.BottomUpScans
	c.CASOps += other.CASOps
	c.PointerChases += other.PointerChases
}

// Model collects counters for p virtual processors plus a global barrier
// count. A nil *Model is valid everywhere and makes all probes no-ops,
// so algorithms can run un-instrumented at full speed.
type Model struct {
	counters []Counters
	barriers int64
	// spanNC is the dependency-chain span of the computation in
	// non-contiguous-access units: the longest chain of operations that
	// must execute sequentially regardless of processor count (e.g. a
	// BFS cannot claim a vertex before its parent was processed).
	// Evaluating Time as work-per-processor plus span is Brent's bound;
	// it is what makes high-diameter inputs such as the paper's
	// degenerate chain correctly show no parallel speedup.
	spanNC int64
}

// New returns a Model for p virtual processors. It panics if p < 1.
func New(p int) *Model {
	if p < 1 {
		panic(fmt.Sprintf("smpmodel: New(%d) needs p >= 1", p))
	}
	return &Model{counters: make([]Counters, p)}
}

// NumProcs returns the number of virtual processors, or 0 for nil.
func (m *Model) NumProcs() int {
	if m == nil {
		return 0
	}
	return len(m.counters)
}

// Probe returns the per-processor probe for tid. Probe(tid) on a nil
// model returns a nil probe whose methods are no-ops.
func (m *Model) Probe(tid int) *Probe {
	if m == nil {
		return nil
	}
	return &Probe{c: &m.counters[tid]}
}

// AddBarriers records b barrier synchronizations. Barriers are global
// events, so a single call (not one per processor) records each barrier.
// Safe on a nil model.
func (m *Model) AddBarriers(b int) {
	if m == nil {
		return
	}
	m.barriers += int64(b)
}

// Barriers returns the recorded barrier count.
func (m *Model) Barriers() int64 {
	if m == nil {
		return 0
	}
	return m.barriers
}

// Proc returns a copy of processor tid's counters.
func (m *Model) Proc(tid int) Counters { return m.counters[tid] }

// AddSpanNC accumulates dependency-chain span, in non-contiguous-access
// units. Safe on a nil model.
func (m *Model) AddSpanNC(nc int64) {
	if m == nil {
		return
	}
	m.spanNC += nc
}

// SpanNC returns the recorded dependency-chain span.
func (m *Model) SpanNC() int64 {
	if m == nil {
		return 0
	}
	return m.spanNC
}

// MaxPerProc returns the element-wise maxima over processors — the
// T_M and T_C of the Helman–JáJá triplet (NonContig+Contig split).
func (m *Model) MaxPerProc() Counters {
	var out Counters
	for i := range m.counters {
		c := &m.counters[i]
		if c.NonContig > out.NonContig {
			out.NonContig = c.NonContig
		}
		if c.Contig > out.Contig {
			out.Contig = c.Contig
		}
		if c.Ops > out.Ops {
			out.Ops = c.Ops
		}
		if c.NonContigCompact > out.NonContigCompact {
			out.NonContigCompact = c.NonContigCompact
		}
		if c.ContigCompact > out.ContigCompact {
			out.ContigCompact = c.ContigCompact
		}
		if c.BottomUpScans > out.BottomUpScans {
			out.BottomUpScans = c.BottomUpScans
		}
		if c.CASOps > out.CASOps {
			out.CASOps = c.CASOps
		}
		if c.PointerChases > out.PointerChases {
			out.PointerChases = c.PointerChases
		}
	}
	return out
}

// Total returns the element-wise sum over processors (total work).
func (m *Model) Total() Counters {
	var out Counters
	for i := range m.counters {
		out.Add(m.counters[i])
	}
	return out
}

// Triplet formats the model state as the paper's cost triplet. Compact
// accesses fold into the class they belong to (non-contiguous or
// contiguous); bottom-up scans are streaming, so they fold into T_C;
// CAS attempts and pointer chases are main-memory round trips, so they
// fold into T_M.
func (m *Model) Triplet() string {
	mx := m.MaxPerProc()
	return fmt.Sprintf("⟨T_M=%d; T_C=%d; B=%d⟩",
		mx.NonContig+mx.NonContigCompact+mx.CASOps+mx.PointerChases,
		mx.Ops+mx.Contig+mx.ContigCompact+mx.BottomUpScans, m.barriers)
}

// Probe is the per-processor instrumentation handle. All methods are
// safe on a nil probe (no-ops), so un-instrumented runs pay only a
// branch.
type Probe struct {
	c *Counters
}

// NonContig charges k non-contiguous memory accesses.
func (p *Probe) NonContig(k int64) {
	if p != nil {
		p.c.NonContig += k
	}
}

// Contig charges k contiguous (streaming) memory accesses.
func (p *Probe) Contig(k int64) {
	if p != nil {
		p.c.Contig += k
	}
}

// Ops charges k units of local computation.
func (p *Probe) Ops(k int64) {
	if p != nil {
		p.c.Ops += k
	}
}

// NonContigC charges k non-contiguous accesses through the compact
// uint32 CSR layout.
func (p *Probe) NonContigC(k int64) {
	if p != nil {
		p.c.NonContigCompact += k
	}
}

// ContigC charges k contiguous accesses through the compact uint32 CSR
// layout.
func (p *Probe) ContigC(k int64) {
	if p != nil {
		p.c.ContigCompact += k
	}
}

// BottomUpScan charges k bottom-up sweep inspections (streaming reads
// of the parent array in vertex order).
func (p *Probe) BottomUpScan(k int64) {
	if p != nil {
		p.c.BottomUpScans += k
	}
}

// CAS charges k atomic compare-and-swap attempts (union-find hook
// elections; won or lost, the coherence cost is paid either way).
func (p *Probe) CAS(k int64) {
	if p != nil {
		p.c.CASOps += k
	}
}

// Chase charges k serially dependent random accesses (union-find parent
// walks and compression writes).
func (p *Probe) Chase(k int64) {
	if p != nil {
		p.c.PointerChases += k
	}
}

// Machine converts a cost triplet into modeled time. The defaults are
// calibrated to the paper's platform class (Sun E4500, 400 MHz
// UltraSPARC II, UMA shared memory: worst-case main-memory access in the
// hundreds of nanoseconds, software barriers in the tens of
// microseconds).
type Machine struct {
	Name string
	// NonContigNS is the cost of one non-contiguous access in ns.
	NonContigNS float64
	// ContigNS is the amortized cost of one streaming access in ns.
	ContigNS float64
	// OpNS is the cost of one local operation in ns.
	OpNS float64
	// BarrierNS is the cost of one barrier synchronization in ns.
	BarrierNS float64
	// NonContigCompactNS and ContigCompactNS price accesses through the
	// compact uint32 CSR layout. Zero means "same as the wide rate"
	// (NonContigNS / ContigNS), so hand-built profiles that predate the
	// compact layout keep their meaning.
	NonContigCompactNS float64
	ContigCompactNS    float64
	// CASNS prices one compare-and-swap attempt and ChaseNS one serially
	// dependent random access (see Counters.CASOps/PointerChases). Zero
	// means "same as NonContigNS", so profiles that predate the
	// union-find family keep their meaning.
	CASNS   float64
	ChaseNS float64
}

// E4500 returns a profile calibrated to the paper's Sun Enterprise 4500.
func E4500() Machine {
	return Machine{
		Name:        "sun-e4500",
		NonContigNS: 300, // main-memory latency, direct-mapped 16KB L1 misses
		ContigNS:    15,  // streaming, amortized over 64B lines
		OpNS:        2.5, // 400 MHz, ~1 op/cycle
		BarrierNS:   20000,
		// Compact rates: halving the element width doubles how many
		// offsets fit a 64B line and a TLB page, cutting the miss rate of
		// random offset loads by roughly a third and the streaming cost in
		// half.
		NonContigCompactNS: 200,
		ContigCompactNS:    7.5,
		// A CAS is a main-memory round trip plus the locked
		// read-modify-write holding the line exclusive; a chase misses
		// like any random access but cannot overlap its neighbors, which
		// the per-access rate already fails to capture — both priced at a
		// premium over the 300ns random access.
		CASNS:   450,
		ChaseNS: 340,
	}
}

// Modern returns a profile for a current x86 server, used by the
// sensitivity ablation (the shape conclusions survive the profile swap).
func Modern() Machine {
	return Machine{
		Name:               "modern-x86",
		NonContigNS:        80,
		ContigNS:           2,
		OpNS:               0.35,
		BarrierNS:          3000,
		NonContigCompactNS: 55,
		ContigCompactNS:    1,
		CASNS:              110,
		ChaseNS:            90,
	}
}

// Time evaluates the model under machine mach: the larger of the
// busiest processor's weighted charges and the dependency span (the
// max(W/p, S) form of Brent's bound — the span is already contained in
// the p = 1 work term, so summing would double-count it), plus the
// serialized barrier term.
func (m *Model) Time(mach Machine) time.Duration {
	if m == nil {
		return 0
	}
	// The gating processor is the one with the largest weighted sum, not
	// the max of each component independently: evaluate per processor.
	ncc, cc := mach.NonContigCompactNS, mach.ContigCompactNS
	if ncc == 0 {
		ncc = mach.NonContigNS
	}
	if cc == 0 {
		cc = mach.ContigNS
	}
	cas, chase := mach.CASNS, mach.ChaseNS
	if cas == 0 {
		cas = mach.NonContigNS
	}
	if chase == 0 {
		chase = mach.NonContigNS
	}
	var worst float64
	for i := range m.counters {
		c := &m.counters[i]
		t := float64(c.NonContig)*mach.NonContigNS +
			float64(c.Contig)*mach.ContigNS +
			float64(c.Ops)*mach.OpNS +
			float64(c.NonContigCompact)*ncc +
			float64(c.ContigCompact)*cc +
			float64(c.BottomUpScans)*mach.ContigNS +
			float64(c.CASOps)*cas +
			float64(c.PointerChases)*chase
		if t > worst {
			worst = t
		}
	}
	if span := float64(m.spanNC) * mach.NonContigNS; span > worst {
		worst = span
	}
	worst += float64(m.barriers) * mach.BarrierNS
	return time.Duration(worst) * time.Nanosecond
}
