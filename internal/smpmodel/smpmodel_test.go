package smpmodel

import (
	"testing"
	"time"
)

func TestNilModelIsSafe(t *testing.T) {
	var m *Model
	p := m.Probe(0)
	p.NonContig(5)
	p.Contig(5)
	p.Ops(5)
	m.AddBarriers(3)
	m.AddSpanNC(100)
	if m.NumProcs() != 0 || m.Barriers() != 0 || m.SpanNC() != 0 {
		t.Fatal("nil model not inert")
	}
	if m.Time(E4500()) != 0 {
		t.Fatal("nil model has nonzero time")
	}
}

func TestProbeAccumulates(t *testing.T) {
	m := New(3)
	m.Probe(1).NonContig(10)
	m.Probe(1).Contig(20)
	m.Probe(1).Ops(30)
	m.Probe(2).NonContig(5)
	c := m.Proc(1)
	if c.NonContig != 10 || c.Contig != 20 || c.Ops != 30 {
		t.Fatalf("proc 1 counters %+v", c)
	}
	if m.Proc(0).NonContig != 0 {
		t.Fatal("proc 0 contaminated")
	}
	total := m.Total()
	if total.NonContig != 15 {
		t.Fatalf("total NC %d", total.NonContig)
	}
	mx := m.MaxPerProc()
	if mx.NonContig != 10 || mx.Contig != 20 {
		t.Fatalf("max %+v", mx)
	}
}

func TestTimeUsesWorstProcessor(t *testing.T) {
	m := New(2)
	m.Probe(0).NonContig(1000)
	m.Probe(1).NonContig(10)
	mach := Machine{NonContigNS: 100, ContigNS: 1, OpNS: 1, BarrierNS: 0}
	if got := m.Time(mach); got != 100*1000*time.Nanosecond {
		t.Fatalf("Time = %v", got)
	}
	// The gating processor is by weighted sum, not per-component max.
	m2 := New(2)
	m2.Probe(0).NonContig(10) // 10*100 = 1000ns
	m2.Probe(1).Ops(5000)     // 5000*1 = 5000ns -> gates
	if got := m2.Time(mach); got != 5000*time.Nanosecond {
		t.Fatalf("Time = %v", got)
	}
}

func TestTimeAddsBarriers(t *testing.T) {
	m := New(1)
	m.AddBarriers(4)
	mach := Machine{BarrierNS: 1000}
	if got := m.Time(mach); got != 4000*time.Nanosecond {
		t.Fatalf("Time = %v", got)
	}
}

func TestTimeSpanDominates(t *testing.T) {
	m := New(4)
	for i := 0; i < 4; i++ {
		m.Probe(i).NonContig(100) // work term: 100 NC each
	}
	mach := Machine{NonContigNS: 10}
	if got := m.Time(mach); got != 1000*time.Nanosecond {
		t.Fatalf("work-bound Time = %v", got)
	}
	m.AddSpanNC(50) // below the work term: no effect
	if got := m.Time(mach); got != 1000*time.Nanosecond {
		t.Fatalf("small span changed Time to %v", got)
	}
	m.AddSpanNC(1000) // span 1050 now dominates
	if got := m.Time(mach); got != 10500*time.Nanosecond {
		t.Fatalf("span-bound Time = %v", got)
	}
}

func TestTripletFormat(t *testing.T) {
	m := New(2)
	m.Probe(0).NonContig(7)
	m.AddBarriers(2)
	s := m.Triplet()
	if s == "" {
		t.Fatal("empty triplet")
	}
}

func TestMachineProfiles(t *testing.T) {
	e := E4500()
	mod := Modern()
	if e.NonContigNS <= mod.NonContigNS {
		t.Fatal("the 2004 machine should have slower memory than a modern one")
	}
	if e.Name == "" || mod.Name == "" {
		t.Fatal("profiles must be named")
	}
}

func TestNewPanicsOnBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) accepted")
		}
	}()
	New(0)
}

func TestCountersAdd(t *testing.T) {
	a := Counters{NonContig: 1, Contig: 2, Ops: 3}
	a.Add(Counters{NonContig: 10, Contig: 20, Ops: 30})
	if a.NonContig != 11 || a.Contig != 22 || a.Ops != 33 {
		t.Fatalf("Add result %+v", a)
	}
}
