package sched

import (
	"sync"
	"testing"

	"spantree/internal/obs"
)

// TestMinStealLenScaling pins the p-scaled steal threshold: max(2, p/2).
// These exact values are load-bearing — lowering them reintroduces the
// bursty re-idling on small graphs at high p, raising them starves
// thieves on two-processor runs.
func TestMinStealLenScaling(t *testing.T) {
	want := map[int]int{1: 2, 2: 2, 3: 2, 4: 2, 5: 2, 6: 3, 8: 4, 16: 8, 32: 16}
	for p, w := range want {
		if got := MinStealLen(p); got != w {
			t.Errorf("MinStealLen(%d) = %d, want %d", p, got, w)
		}
	}
}

// TestChunkPolicyNames pins the CLI vocabulary.
func TestChunkPolicyNames(t *testing.T) {
	if ChunkAdaptive.String() != "adaptive" || ChunkFixed.String() != "fixed" {
		t.Fatalf("policy names: %v %v", ChunkAdaptive, ChunkFixed)
	}
	for _, name := range []string{"adaptive", "fixed"} {
		cp, err := ParseChunkPolicy(name)
		if err != nil || cp.String() != name {
			t.Fatalf("ParseChunkPolicy(%q) = %v, %v", name, cp, err)
		}
	}
	if _, err := ParseChunkPolicy("sometimes"); err == nil {
		t.Fatal("bad policy name accepted")
	}
	var zero ChunkPolicy
	if zero != ChunkAdaptive {
		t.Fatal("zero value is not the adaptive default")
	}
}

// TestControllerAdapts unit-tests the controller's dynamics: doubling
// toward the cap while the queue is deep and steals succeed, halving
// toward 1 on starvation or a shallow queue, and inertness under the
// fixed policy.
func TestControllerAdapts(t *testing.T) {
	var lc obs.Local
	c := NewController(ChunkAdaptive, 0)
	if c.Chunk() != AdaptiveInitChunk || c.Max() != AdaptiveMaxChunk {
		t.Fatalf("adaptive start = %d cap %d, want %d cap %d",
			c.Chunk(), c.Max(), AdaptiveInitChunk, AdaptiveMaxChunk)
	}
	// Deep queue, no failed steals: doubles each decision up to the cap.
	for i := 0; i < 20; i++ {
		c.Adapt(4*c.Chunk(), 0, &lc)
	}
	if c.Chunk() != AdaptiveMaxChunk || c.HighWater() != AdaptiveMaxChunk {
		t.Fatalf("deep queue reached chunk=%d hi=%d, want cap %d",
			c.Chunk(), c.HighWater(), AdaptiveMaxChunk)
	}
	// A failed steal since the last decision halves, even with depth.
	c.Adapt(4*c.Chunk(), 1, &lc)
	if c.Chunk() != AdaptiveMaxChunk/2 {
		t.Fatalf("starvation did not shrink: chunk=%d", c.Chunk())
	}
	// No new failures afterward: the same count does not re-shrink.
	c.Adapt(4*c.Chunk(), 1, &lc)
	if c.Chunk() != AdaptiveMaxChunk {
		t.Fatalf("recovery did not grow: chunk=%d", c.Chunk())
	}
	// Shallow queue shrinks toward (and floors at) 1.
	for i := 0; i < 20; i++ {
		c.Adapt(0, 1, &lc)
	}
	if c.Chunk() != 1 {
		t.Fatalf("shallow queue floored at %d, want 1", c.Chunk())
	}

	// An explicit size caps adaptive growth and bounds the start.
	c = NewController(ChunkAdaptive, 4)
	if c.Chunk() != 4 || c.Max() != 4 {
		t.Fatalf("capped start = %d/%d, want 4/4", c.Chunk(), c.Max())
	}

	// Fixed: never moves, and defaults its size.
	c = NewController(ChunkFixed, 64)
	c.Adapt(10_000, 5, &lc)
	c.Adapt(0, 9, &lc)
	if c.Chunk() != 64 || c.HighWater() != 64 {
		t.Fatalf("fixed controller moved: chunk=%d hi=%d", c.Chunk(), c.HighWater())
	}
	if c := NewController(ChunkFixed, 0); c.Chunk() != DefaultChunkSize {
		t.Fatalf("fixed default chunk = %d, want %d", c.Chunk(), DefaultChunkSize)
	}
}

// TestFailSignalPerVictim pins the per-victim semantics: a thief's
// failure charges only the victims it names, owners read only their own
// slot, and nil signals are inert.
func TestFailSignalPerVictim(t *testing.T) {
	s := NewFailSignal(4)
	s.Record(2)
	s.Record(2)
	s.Record(0)
	for owner, want := range []int64{1, 0, 2, 0} {
		if got := s.Load(owner); got != want {
			t.Errorf("Load(%d) = %d, want %d", owner, got, want)
		}
	}
	var nilSig *FailSignal
	nilSig.Record(1) // must not panic
	if nilSig.Load(1) != 0 {
		t.Error("nil signal reported starvation")
	}
}

// TestControllerPerVictimIsolation is the satellite's behavioral check:
// with the per-victim signal, only the raided worker's controller
// shrinks — the un-raided worker with a deep queue keeps growing. Under
// the old traversal-wide count both would have shrunk.
func TestControllerPerVictimIsolation(t *testing.T) {
	var lc obs.Local
	s := NewFailSignal(2)
	raided := NewController(ChunkAdaptive, 0)
	wellFed := NewController(ChunkAdaptive, 0)

	// Both grow for a while on deep queues.
	for i := 0; i < 3; i++ {
		raided.Adapt(4*raided.Chunk(), s.Load(0), &lc)
		wellFed.Adapt(4*wellFed.Chunk(), s.Load(1), &lc)
	}
	before0, before1 := raided.Chunk(), wellFed.Chunk()

	// A thief starves against worker 0 only.
	s.Record(0)
	raided.Adapt(4*raided.Chunk(), s.Load(0), &lc)
	wellFed.Adapt(4*wellFed.Chunk(), s.Load(1), &lc)

	if raided.Chunk() != before0/2 {
		t.Errorf("raided worker chunk = %d, want %d (shrink)", raided.Chunk(), before0/2)
	}
	if wellFed.Chunk() != 2*before1 {
		t.Errorf("well-fed worker chunk = %d, want %d (keep growing)", wellFed.Chunk(), 2*before1)
	}
}

// TestFailSignalConcurrentRecord is the -race certificate for the
// thief-side writes racing an owner-side reader.
func TestFailSignalConcurrentRecord(t *testing.T) {
	const thieves = 4
	const each = 10000
	s := NewFailSignal(thieves)
	var wg sync.WaitGroup
	wg.Add(thieves + 1)
	for th := 0; th < thieves; th++ {
		go func(th int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				s.Record((th + i) % thieves)
			}
		}(th)
	}
	go func() { // owner-side poller
		defer wg.Done()
		for i := 0; i < each; i++ {
			s.Load(i % thieves)
		}
	}()
	wg.Wait()
	var total int64
	for v := 0; v < thieves; v++ {
		total += s.Load(v)
	}
	if total != thieves*each {
		t.Fatalf("recorded %d failures, want %d", total, thieves*each)
	}
}
