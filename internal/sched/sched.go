// Package sched is the shared dynamic-scheduling layer of the
// repository: the adaptive chunk controller, the p-scaled steal
// threshold, and the per-victim failed-steal signal that every parallel
// loop in the tree consults — the work-stealing traversal in
// internal/core and the work-stealing parallel-for of internal/par
// alike. It exists so there is exactly one implementation of chunk
// control and steal policy: a scheduling improvement lands here and
// takes effect in every algorithm at once.
//
// The controller was grown inside internal/core (where the batched
// hot path made the drain chunk the load-balancing knob) and then
// extracted unchanged: a big chunk amortizes lock traffic but hides up
// to a chunk's worth of frontier from thieves, a small chunk keeps work
// visible at a per-item lock cost, and no fixed value fits all inputs,
// so each worker moves between the regimes at run time.
package sched

import (
	"fmt"
	"sync/atomic"

	"spantree/internal/obs"
)

// ChunkPolicy selects how a worker's drain chunk is chosen.
type ChunkPolicy int

const (
	// ChunkAdaptive is the default policy: each worker grows its drain
	// chunk (doubling, up to the cap) while its queue stays deep and no
	// steal attempt against it is failing, and shrinks it (halving,
	// toward 1) when thieves report failed steals or the queue runs
	// shallow.
	ChunkAdaptive ChunkPolicy = iota
	// ChunkFixed drains exactly the configured chunk size per lock
	// acquisition — the pre-adaptive behavior, selected by the CLIs'
	// -chunk flag and used by the chunk-size ablations.
	ChunkFixed
)

// String returns the CLI name of the policy.
func (cp ChunkPolicy) String() string {
	if cp == ChunkFixed {
		return "fixed"
	}
	return "adaptive"
}

// ParseChunkPolicy converts a CLI name into a ChunkPolicy.
func ParseChunkPolicy(s string) (ChunkPolicy, error) {
	switch s {
	case "adaptive":
		return ChunkAdaptive, nil
	case "fixed":
		return ChunkFixed, nil
	}
	return 0, fmt.Errorf("sched: unknown chunk policy %q (want adaptive or fixed)", s)
}

const (
	// AdaptiveInitChunk is the drain chunk an adaptive worker starts
	// from: small enough that shallow frontiers never hide more than a
	// few items from thieves, three doublings from the fixed default.
	AdaptiveInitChunk = 8
	// AdaptiveMaxChunk is the adaptive controller's default growth cap
	// (an explicit chunk size overrides it when set). Deep regular
	// frontiers reach it within ~5 doublings, beyond which the lock cost
	// per item is already down in the noise.
	AdaptiveMaxChunk = 256
	// DefaultChunkSize is the drain chunk used when ChunkFixed is
	// selected without an explicit size: the owner pays ~2 lock
	// operations per this many items. Batching only amortizes once
	// per-worker queue depth reaches this order, so inputs with n/p well
	// below it run in the startup regime.
	DefaultChunkSize = 64
)

// MinStealLen returns the smallest victim queue worth stealing from at
// processor count p: max(2, p/2). The floor of 2 leaves a single
// in-flight item to its owner — ripping it would only relocate the
// serial bottleneck while thrashing the queues. The p/2 scaling
// addresses the bursty re-idling seen at high p on small inputs: with
// many thieves, halving a 2-element queue hands each of them at most
// one item, which they exhaust immediately and re-idle, so the steal
// threshold must grow with the number of mouths a steal feeds. This is
// also what makes the paper's starvation scenario real — "queues of the
// busy processors may contain only a few elements (in extreme cases ...
// only one element). In this case work awaits busy processors while
// idle processors starve" — and therefore what the idle-detection
// fallback exists to catch.
func MinStealLen(p int) int {
	if m := p / 2; m > 2 {
		return m
	}
	return 2
}

// Controller adapts one worker's drain chunk between lock-cost
// amortization (big chunks) and frontier visibility for thieves (small
// chunks). It is consulted once per drain, entirely from worker-local
// state plus one atomic load of the worker's failed-steal count, so it
// adds no coherence traffic to the hot path.
type Controller struct {
	chunk int // next drain size
	max   int // growth cap (== chunk under ChunkFixed)
	hi    int // largest chunk reached (ChunkHighWater)
	fixed bool
	// lastFail is the failed-steal count observed at the previous
	// decision; any movement since means thieves probed this worker and
	// starved.
	lastFail int64
}

// NewController returns a controller for the given policy. size is the
// fixed chunk under ChunkFixed (<= 0 means DefaultChunkSize) and the
// growth cap under ChunkAdaptive (<= 0 means AdaptiveMaxChunk).
func NewController(policy ChunkPolicy, size int) Controller {
	if policy == ChunkFixed {
		if size <= 0 {
			size = DefaultChunkSize
		}
		return Controller{chunk: size, max: size, hi: size, fixed: true}
	}
	max := size
	if max <= 0 {
		max = AdaptiveMaxChunk
	}
	c := AdaptiveInitChunk
	if c > max {
		c = max
	}
	return Controller{chunk: c, max: max, hi: c}
}

// Chunk returns the next drain size.
func (c *Controller) Chunk() int { return c.chunk }

// Max returns the controller's growth cap (the fixed chunk itself under
// ChunkFixed) — callers size their drain buffers with it.
func (c *Controller) Max() int { return c.max }

// HighWater returns the largest chunk the controller ever reached.
func (c *Controller) HighWater() int { return c.hi }

// Adapt updates the drain chunk after a drain: qlen is the worker's
// post-flush queue depth and failNow the failed-steal count charged
// against this worker (per-victim: only thieves that probed this
// worker's queue and starved move it). Shrinking halves toward 1
// whenever a steal against this worker failed since the last decision
// (work must become visible to thieves) or the queue is too shallow to
// fill the current chunk; growing doubles toward the cap only while the
// queue is deep enough to fill several chunks AND no steal against this
// worker is failing. Grow/shrink steps land in the observability batch.
func (c *Controller) Adapt(qlen int, failNow int64, lc *obs.Local) {
	if c.fixed {
		return
	}
	starved := failNow != c.lastFail
	c.lastFail = failNow
	switch {
	case starved || qlen < c.chunk:
		if c.chunk > 1 {
			c.chunk >>= 1
			lc.Incr(obs.ChunkShrink)
		}
	case qlen >= 4*c.chunk && c.chunk < c.max:
		c.chunk <<= 1
		if c.chunk > c.max {
			c.chunk = c.max
		}
		if c.chunk > c.hi {
			c.hi = c.chunk
		}
		lc.Incr(obs.ChunkGrow)
	}
}

// FailSignal is the per-victim failed-steal signal: one padded counter
// per worker, bumped by thieves against the specific victims they
// probed and found wanting, and read by each owner's Controller at its
// drain boundaries. Charging the victims instead of a traversal-wide
// count means a starving thief shrinks only the chunks of the workers
// actually being raided — a well-fed worker on a distant part of the
// input keeps its full lock amortization (the ROADMAP's large-p
// concern with the global signal).
//
// Writes are thief-side atomic adds; reads are owner-side atomic loads
// of the owner's own slot only, so the signal adds no read-side
// coherence traffic to foreign cache lines on the drain path.
type FailSignal struct {
	slots []failSlot
}

type failSlot struct {
	n atomic.Int64
	_ [7]int64 // pad to a cache line so victims don't false-share
}

// NewFailSignal returns a signal with one slot per worker.
func NewFailSignal(p int) *FailSignal {
	return &FailSignal{slots: make([]failSlot, p)}
}

// Reset zeroes every slot, rearming the signal for a new run on a
// pooled workspace. The caller must guarantee the previous run's
// thieves have drained; Reset is not synchronized against Record.
func (s *FailSignal) Reset() {
	if s == nil {
		return
	}
	for i := range s.slots {
		s.slots[i].n.Store(0)
	}
}

// Record charges one failed steal against victim. Nil-safe.
func (s *FailSignal) Record(victim int) {
	if s == nil {
		return
	}
	s.slots[victim].n.Add(1)
}

// Load returns the failed-steal count charged against owner. Nil-safe
// (a nil signal never reports starvation).
func (s *FailSignal) Load(owner int) int64 {
	if s == nil {
		return 0
	}
	return s.slots[owner].n.Load()
}
