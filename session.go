package spantree

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"spantree/internal/core"
	"spantree/internal/fault"
	"spantree/internal/spanuf"
)

// ErrSessionClosed is returned by Session.FindContext after Close and by
// SessionPool.Acquire after the pool is closed.
var ErrSessionClosed = errors.New("spantree: session closed")

// SessionOptions configures NewSession and NewSessionPool.
type SessionOptions struct {
	// Algorithm selects the pooled algorithm: AlgWorkStealing (the zero
	// value) or AlgSpanUF. The other algorithms have no workspace
	// provisioning and are rejected.
	Algorithm Algorithm
	// NumProcs is the number of virtual processors; 0 means 1.
	NumProcs int
	// ChunkPolicy and ChunkSize configure the drain-chunk controller
	// exactly as in Options.
	ChunkPolicy ChunkPolicy
	ChunkSize   int
	// Direction and Layout configure the traversal's direction policy
	// and CSR layout exactly as in Options. Under LayoutCompact the
	// uint32 mirror is built once at session construction, so pooled
	// runs stay allocation-free whatever the layout. AlgSpanUF honors
	// Layout and ignores Direction.
	Direction Direction
	Layout    Layout
	// Shards configures sharded execution exactly as in Options.Shards:
	// the partition, the per-shard CSR views and the stitch scratch are
	// built once at session construction, so sharded pooled runs stay
	// allocation-free too. Requires FallbackThreshold == 0 when > 1.
	// AlgSpanUF ignores it.
	Shards int
	// FallbackThreshold enables the pathological-case detection (see
	// Options.FallbackThreshold). A triggered fallback allocates — only
	// the work-stealing completion path is pooled. AlgSpanUF ignores it
	// (the sweep has no pathological case to detect).
	FallbackThreshold int
	// QueueCapacity is the per-queue frontier provision, in vertices;
	// 0 means the graph's vertex count, which guarantees no run ever
	// grows a queue (see core.WorkspaceOptions.QueueCapacity). Lowering
	// it saves memory at the cost of reallocation if a frontier outgrows
	// the provision.
	QueueCapacity int
	// Warmups is the number of throwaway runs executed at construction
	// to absorb one-time costs (per-goroutine sleep timers, buffer
	// growth on non-provisioned paths) so the first real request already
	// runs allocation-free. 0 means 2.
	Warmups int
	// StallBudget, if > 0, arms the stuck-run watchdog exactly as in
	// core.Options.StallBudget: a run in which no worker advances for a
	// full budget returns ErrStalled with the session left reusable.
	// AlgSpanUF ignores it (the sweep is a bounded loop with no
	// work-distribution protocol to wedge). 0 disables the watchdog.
	StallBudget time.Duration

	// testHook, when non-nil, runs at every worker chunk boundary (see
	// core.WithTestHook) — in-package test plumbing for driving stalls
	// and panics at exact points; never settable by external callers.
	testHook func(tid int)
}

func (o SessionOptions) withDefaults() SessionOptions {
	if o.NumProcs == 0 {
		o.NumProcs = 1
	}
	if o.Warmups == 0 {
		o.Warmups = 2
	}
	return o
}

// sessionRuntime is what a Session needs from a pooled workspace; both
// core.Workspace (the work-stealing traversal) and spanuf.Workspace
// (the CAS-hook sweep) provide the surface, minus the stats type their
// Run returns — the two concrete fields below keep those typed.
type sessionRuntime interface {
	Flag() *fault.Flag
	NumProcs() int
	Graph() *Graph
	Close()
}

// Session is a reusable, pre-provisioned runtime for one pooled
// algorithm (the work-stealing traversal or the CAS-hook union-find
// sweep, per SessionOptions.Algorithm) on one fixed graph: every buffer
// is allocated at construction and the worker team is spawned once and
// parked between requests, so a warmed session executes FindContext
// with zero steady-state heap allocations (a cancellable context adds
// only its own watcher; context.Background stays allocation-free).
//
// A Session is NOT safe for concurrent use — serialize requests or use
// a SessionPool, which hands each workspace to one request at a time.
// The Result returned by FindContext (its Parent slice and statistics
// included) is owned by the session and valid only until the next
// FindContext call: consume or copy it before reusing or releasing the
// session.
type Session struct {
	rt     sessionRuntime
	w      *core.Workspace   // non-nil iff Algorithm == AlgWorkStealing
	uw     *spanuf.Workspace // non-nil iff Algorithm == AlgSpanUF
	alg    Algorithm
	res    Result
	closed bool
}

// NewSession builds and warms a session for g.
func NewSession(g *Graph, opt SessionOptions) (*Session, error) {
	if g == nil {
		return nil, fmt.Errorf("spantree: nil graph")
	}
	o := opt.withDefaults()
	if o.NumProcs < 1 {
		return nil, fmt.Errorf("spantree: NumProcs = %d, need >= 0", opt.NumProcs)
	}
	s := &Session{alg: o.Algorithm}
	switch o.Algorithm {
	case AlgWorkStealing:
		co := core.Options{
			NumProcs:          o.NumProcs,
			ChunkPolicy:       o.ChunkPolicy,
			ChunkSize:         o.ChunkSize,
			Direction:         o.Direction,
			Layout:            o.Layout,
			Shards:            o.Shards,
			FallbackThreshold: o.FallbackThreshold,
			StallBudget:       o.StallBudget,
		}
		if o.testHook != nil {
			co = core.WithTestHook(co, o.testHook)
		}
		w, err := core.NewWorkspace(g, co, core.WorkspaceOptions{QueueCapacity: o.QueueCapacity})
		if err != nil {
			return nil, err
		}
		s.w, s.rt = w, w
	case AlgSpanUF:
		uw, err := spanuf.NewWorkspace(g, spanuf.Options{
			NumProcs:  o.NumProcs,
			Compact:   o.Layout == LayoutCompact,
			ChunkSize: o.ChunkSize,
		})
		if err != nil {
			return nil, err
		}
		s.uw, s.rt = uw, uw
	default:
		return nil, fmt.Errorf("spantree: sessions support workstealing and spanuf, not %v", o.Algorithm)
	}
	for i := 0; i < o.Warmups; i++ {
		if _, err := s.run(uint64(i) + 1); err != nil {
			s.rt.Close()
			return nil, fmt.Errorf("spantree: session warmup: %w", err)
		}
	}
	return s, nil
}

// run dispatches one pooled execution and fills the session-owned
// Result.
func (s *Session) run(seed uint64) (*Result, error) {
	start := time.Now()
	s.res = Result{Algorithm: s.alg}
	var parent []VID
	if s.w != nil {
		p, stats, err := s.w.Run(seed)
		if err != nil {
			return nil, err
		}
		parent, s.res.WorkStealing = p, stats
	} else {
		p, stats, err := s.uw.Run(seed)
		if err != nil {
			return nil, err
		}
		parent, s.res.SpanUF = p, stats
	}
	s.res.Parent = parent
	s.res.Elapsed = time.Since(start)
	for _, p := range parent {
		if p == None {
			s.res.Roots++
		}
	}
	s.res.TreeEdges = len(parent) - s.res.Roots
	return &s.res, nil
}

// NumProcs returns the session's worker count.
func (s *Session) NumProcs() int { return s.rt.NumProcs() }

// Graph returns the graph the session was built for.
func (s *Session) Graph() *Graph { return s.rt.Graph() }

// Algorithm returns the pooled algorithm the session runs.
func (s *Session) Algorithm() Algorithm { return s.alg }

// Find is FindContext with a background context (the allocation-free
// fast path: no watcher goroutine is spawned).
func (s *Session) Find(seed uint64) (*Result, error) {
	return s.FindContext(context.Background(), seed)
}

// FindContext runs the session's algorithm on its pooled buffers with
// the same cancellation contract as the package-level FindContext: a
// canceled context returns ErrCanceled, an expired deadline ErrDeadline
// (an already-expired context is rejected before any worker wakes), and
// an isolated worker panic degrades to the sequential path, still
// yielding a valid forest. After any outcome — success, cancel, panic —
// the session remains reusable.
func (s *Session) FindContext(ctx context.Context, seed uint64) (*Result, error) {
	if s.closed {
		return nil, ErrSessionClosed
	}
	// The workspace flag is rearmed here, before the watch is armed, so a
	// trip that lands between Watch and Run is never lost.
	flag := s.rt.Flag()
	flag.Reset()
	stop := fault.Watch(ctx, flag)
	defer stop()
	if err := ctx.Err(); err != nil {
		flag.TripContext(err)
		return nil, flag.Err()
	}
	return s.run(seed)
}

// Close releases the session's parked worker team. Idempotent; must not
// race FindContext.
func (s *Session) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.rt.Close()
}

// SessionPool is a fixed-size freelist of warmed sessions for one graph.
// Unlike sync.Pool it never drops or lazily recreates members — the
// worker teams of its sessions are durable, so the goroutine count of a
// serving process is size*NumProcs regardless of request count — and
// Close deterministically releases every team.
type SessionPool struct {
	free chan *Session
	all  []*Session
	mu   sync.Mutex
	done bool
}

// NewSessionPool builds size warmed sessions for g. Construction cost is
// paid once, up front (size teams spawned, size*Warmups throwaway runs).
func NewSessionPool(g *Graph, opt SessionOptions, size int) (*SessionPool, error) {
	if size < 1 {
		return nil, fmt.Errorf("spantree: session pool size = %d, need >= 1", size)
	}
	p := &SessionPool{free: make(chan *Session, size)}
	for i := 0; i < size; i++ {
		s, err := NewSession(g, opt)
		if err != nil {
			p.Close()
			return nil, err
		}
		p.all = append(p.all, s)
		p.free <- s
	}
	return p, nil
}

// Size returns the pool's session count.
func (p *SessionPool) Size() int { return len(p.all) }

// Acquire returns a free session, blocking until one is released or ctx
// is done. The caller must Release it (after consuming the Result of
// any FindContext call — the result's buffers go back into the pool
// with the session).
func (p *SessionPool) Acquire(ctx context.Context) (*Session, error) {
	select {
	case s, ok := <-p.free:
		if !ok {
			return nil, ErrSessionClosed
		}
		return s, nil
	default:
	}
	select {
	case s, ok := <-p.free:
		if !ok {
			return nil, ErrSessionClosed
		}
		return s, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// TryAcquire returns a free session without blocking, or false when the
// pool is empty or closed — the admission-control hook: a serving layer
// maps false onto its typed overload rejection.
func (p *SessionPool) TryAcquire() (*Session, bool) {
	select {
	case s, ok := <-p.free:
		return s, ok
	default:
		return nil, false
	}
}

// Release returns s to the pool. After Close, released sessions are
// retired instead.
func (p *SessionPool) Release(s *Session) {
	if s == nil {
		return
	}
	p.mu.Lock()
	if p.done {
		p.mu.Unlock()
		s.Close()
		return
	}
	// The channel is buffered to the pool size and only holds pool
	// members, so this send never blocks; under mu it cannot race the
	// close in Close.
	p.free <- s
	p.mu.Unlock()
}

// Close retires the pool: free sessions are closed now, in-flight ones
// when released. Acquire fails from this point on. Idempotent.
func (p *SessionPool) Close() {
	p.mu.Lock()
	if p.done {
		p.mu.Unlock()
		return
	}
	p.done = true
	p.mu.Unlock()
	close(p.free)
	for s := range p.free {
		s.Close()
	}
}
