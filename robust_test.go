package spantree

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"spantree/internal/core"
	"spantree/internal/gen"
	"spantree/internal/graph"
)

// TestFindContextBackground: a background context must behave exactly
// like Find — no watcher goroutine, no error.
func TestFindContextBackground(t *testing.T) {
	g := gen.Torus2D(8, 8)
	for _, algo := range Algorithms() {
		res, err := FindContext(context.Background(), g, Options{
			Algorithm: algo, NumProcs: 4, Seed: 1, Verify: true,
		})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if res.Roots != 1 {
			t.Fatalf("%v: %d roots, want 1", algo, res.Roots)
		}
	}
}

// TestFindContextPreCanceled: an already-canceled context is rejected
// with the typed error before any worker starts, for every algorithm
// (including the sequential baselines).
func TestFindContextPreCanceled(t *testing.T) {
	g := gen.Chain(500)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, algo := range Algorithms() {
		before := runtime.NumGoroutine()
		res, err := FindContext(ctx, g, Options{Algorithm: algo, NumProcs: 4, Seed: 1})
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("%v: err = %v, want ErrCanceled", algo, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: ErrCanceled must wrap context.Canceled", algo)
		}
		if res != nil {
			t.Fatalf("%v: canceled run returned a result", algo)
		}
		waitNumGoroutine(t, before)
	}
}

// TestFindContextExpiredDeadline: same for a dead deadline.
func TestFindContextExpiredDeadline(t *testing.T) {
	g := gen.Chain(500)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	// The watcher trips the flag asynchronously; an expired deadline
	// shows up by the first poll at the latest, so retry-free assertion
	// needs the ctx to be visibly done first.
	<-ctx.Done()
	_, err := FindContext(ctx, g, Options{Algorithm: AlgWorkStealing, NumProcs: 2, Seed: 1})
	if !errors.Is(err, ErrDeadline) && !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if errors.Is(err, ErrDeadline) && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("ErrDeadline must wrap context.DeadlineExceeded")
	}
}

// TestFindContextCancelMidRun cancels while the traversal is running
// and checks the typed error plus full goroutine drainage.
func TestFindContextCancelMidRun(t *testing.T) {
	g := gen.Random(200000, 400000, 3)
	for _, algo := range []Algorithm{AlgWorkStealing, AlgSV, AlgHCS, AlgAwerbuchShiloach, AlgLevelBFS} {
		ctx, cancel := context.WithCancel(context.Background())
		before := runtime.NumGoroutine()
		go func() {
			time.Sleep(2 * time.Millisecond)
			cancel()
		}()
		res, err := FindContext(ctx, g, Options{Algorithm: algo, NumProcs: 8, Seed: 5})
		cancel()
		if err == nil {
			// The run legitimately beat the cancel; fine, but then the
			// result must be complete and valid.
			if verr := Verify(g, res.Parent); verr != nil {
				t.Fatalf("%v: completed run invalid: %v", algo, verr)
			}
			continue
		}
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("%v: err = %v, want ErrCanceled", algo, err)
		}
		waitNumGoroutine(t, before)
	}
}

// TestValidateInput: the option front-loads graph.Validate and returns
// its typed error.
func TestValidateInput(t *testing.T) {
	bad := &Graph{Offs: []int64{0, 1, 2}, Adj: []VID{1, 1}}
	_, err := Find(bad, Options{ValidateInput: true, NumProcs: 2})
	ve, ok := AsValidationError(err)
	if !ok {
		t.Fatalf("err = %v, want a *ValidationError", err)
	}
	if ve.Code == 0 || ve.Code.String() == "" {
		t.Fatalf("validation error missing its code: %+v", ve)
	}
	// A valid graph must pass with the option on.
	if _, err := Find(gen.Chain(10), Options{ValidateInput: true, Verify: true}); err != nil {
		t.Fatalf("valid input rejected: %v", err)
	}
}

// TestChaosSeedGating: without the chaos build tag, arming the injector
// must be an explicit error, never a silently clean run. (The chaos
// build runs the seeded run for real instead.)
func TestChaosSeedGating(t *testing.T) {
	g := gen.Chain(100)
	res, err := Find(g, Options{ChaosSeed: 42, NumProcs: 2, Verify: true})
	if ChaosEnabled {
		if err != nil {
			t.Fatalf("chaos build: seeded run failed: %v", err)
		}
		if res.Roots != 1 {
			t.Fatalf("chaos build: %d roots, want 1", res.Roots)
		}
		return
	}
	if err == nil {
		t.Fatal("ChaosSeed accepted by a binary built without -tags chaos")
	}
}

// TestEdgeCaseTable is the public-API boundary sweep (empty input,
// single vertex, p far beyond n) across every algorithm.
func TestEdgeCaseTable(t *testing.T) {
	shapes := []struct {
		name string
		g    *Graph
	}{
		{"empty", gen.Chain(0)},
		{"single", gen.Chain(1)},
		{"two", gen.Chain(2)},
		{"small-disconnected", graph.Union(gen.Chain(3), gen.Chain(2), gen.Chain(1))},
	}
	for _, algo := range Algorithms() {
		for _, tc := range shapes {
			for _, p := range []int{1, 4, 33} {
				res, err := Find(tc.g, Options{Algorithm: algo, NumProcs: p, Seed: 2, Verify: true})
				if err != nil {
					t.Fatalf("%v %s p=%d: %v", algo, tc.name, p, err)
				}
				if len(res.Parent) != tc.g.NumVertices() {
					t.Fatalf("%v %s p=%d: parent length %d", algo, tc.name, p, len(res.Parent))
				}
				if want := graph.NumComponents(tc.g); res.Roots != want {
					t.Fatalf("%v %s p=%d: %d roots, want %d", algo, tc.name, p, res.Roots, want)
				}
			}
		}
	}
}

// TestPublicPanicDegradation drives the panic-isolation contract
// against the public re-exports: the degradation path's PanicError
// must be recognized by spantree.AsPanicError and the degraded forest
// by spantree.Verify.
func TestPublicPanicDegradation(t *testing.T) {
	g := gen.Random(2000, 4000, 8)
	var hits atomic.Int64
	parent, stats, err := core.SpanningForest(g, core.WithTestHook(
		core.Options{NumProcs: 4, Seed: 3},
		func(tid int) {
			if tid == 1 && hits.Add(1) == 2 {
				panic("public API probe")
			}
		}))
	if err != nil {
		t.Fatalf("degraded run errored: %v", err)
	}
	if !stats.DegradedToSeq || stats.Panic == nil {
		t.Fatalf("degradation not recorded in stats: %+v", stats)
	}
	if _, ok := AsPanicError(stats.Panic); !ok {
		t.Fatal("Stats.Panic is not recognized by AsPanicError")
	}
	var pe *PanicError
	if !errors.As(error(stats.Panic), &pe) || pe.Worker != 1 {
		t.Fatalf("re-exported PanicError mismatch: %v", stats.Panic)
	}
	if verr := Verify(g, parent); verr != nil {
		t.Fatalf("degraded forest invalid: %v", verr)
	}
}

func waitNumGoroutine(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > want {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d live, want <= %d\n%s", runtime.NumGoroutine(), want, buf[:n])
		}
		time.Sleep(time.Millisecond)
	}
}
