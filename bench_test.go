package spantree

// Wall-clock benchmarks, one family per figure of the paper plus one per
// ablation from DESIGN.md. On a multi-core host the parallel benches
// show real speedup; on any host they measure throughput. The
// deterministic modeled-time reproduction of the figures (the mode that
// recreates the paper's shapes regardless of host parallelism) is
// `go run ./cmd/benchfig -fig all`; these benches are the measured
// counterpart.
//
// Benchmark sizes default to n = 1<<16 so the full suite runs in
// minutes; paper-scale runs use cmd/benchfig -scale 1048576.

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"spantree/internal/gen"
	"spantree/internal/graph"
)

const benchN = 1 << 16

// benchGraphs caches the benchmark inputs across sub-benchmarks.
var benchGraphs struct {
	once sync.Once
	m    map[string]*Graph
}

func benchGraph(name string) *Graph {
	benchGraphs.once.Do(func() {
		side := 1
		for side*side < benchN {
			side++
		}
		cube := 1
		for cube*cube*cube < benchN {
			cube++
		}
		logn := 0
		for 1<<logn < benchN {
			logn++
		}
		benchGraphs.m = map[string]*Graph{
			"fig3-random":    gen.RandomConnected(benchN, 3*benchN/2, 1),
			"torus-rowmajor": gen.Torus2D(side, side),
			"torus-random":   graph.RandomRelabel(gen.Torus2D(side, side), 2),
			"random-nlogn":   gen.Random(benchN, benchN*logn, 3),
			"mesh2d60":       gen.Mesh2D(side, side, 0.60, 4),
			"mesh3d40":       gen.Mesh3D(cube, cube, cube, 0.40, 5),
			"ad3":            gen.AD3(benchN, 6),
			"geo-flat":       gen.GeoFlat(benchN, gen.DefaultGeoFlatParams(), 7),
			"geo-hier":       gen.GeoHier(benchN, gen.DefaultGeoHierParams(), 8),
			"chain-seq":      gen.Chain(benchN),
			"chain-random":   graph.RandomRelabel(gen.Chain(benchN), 9),
			"star":           gen.Star(benchN),
		}
	})
	return benchGraphs.m[name]
}

func benchProcs() []int {
	max := runtime.GOMAXPROCS(0)
	ps := []int{1}
	for p := 2; p <= max && p <= 8; p *= 2 {
		ps = append(ps, p)
	}
	return ps
}

// runFindBench benchmarks one algorithm configuration on one graph.
func runFindBench(b *testing.B, g *Graph, opt Options) {
	b.Helper()
	b.ReportAllocs()
	b.SetBytes(int64(g.NumVertices() + 2*g.NumEdges())) // items touched
	for i := 0; i < b.N; i++ {
		res, err := Find(g, opt)
		if err != nil {
			b.Fatal(err)
		}
		if res.TreeEdges != g.NumVertices()-res.Roots {
			b.Fatalf("inconsistent result: %d edges, %d roots", res.TreeEdges, res.Roots)
		}
	}
}

// BenchmarkFig3 is the wall-clock counterpart of the paper's Fig. 3:
// sequential BFS vs the work-stealing algorithm on a random graph with
// m = 1.5n.
func BenchmarkFig3(b *testing.B) {
	g := benchGraph("fig3-random")
	b.Run("sequential", func(b *testing.B) {
		runFindBench(b, g, Options{Algorithm: AlgSequentialBFS})
	})
	for _, p := range benchProcs() {
		b.Run(fmt.Sprintf("newalg-p%d", p), func(b *testing.B) {
			runFindBench(b, g, Options{Algorithm: AlgWorkStealing, NumProcs: p, Seed: 1})
		})
	}
}

// benchmarkFig4Plot runs the three series of one Fig. 4 plot.
func benchmarkFig4Plot(b *testing.B, graphName string) {
	g := benchGraph(graphName)
	b.Run("sequential", func(b *testing.B) {
		runFindBench(b, g, Options{Algorithm: AlgSequentialBFS})
	})
	for _, p := range benchProcs() {
		b.Run(fmt.Sprintf("sv-p%d", p), func(b *testing.B) {
			runFindBench(b, g, Options{Algorithm: AlgSV, NumProcs: p})
		})
		b.Run(fmt.Sprintf("newalg-p%d", p), func(b *testing.B) {
			runFindBench(b, g, Options{Algorithm: AlgWorkStealing, NumProcs: p, Seed: 1})
		})
	}
}

func BenchmarkFig4TorusRowMajor(b *testing.B)   { benchmarkFig4Plot(b, "torus-rowmajor") }
func BenchmarkFig4TorusRandom(b *testing.B)     { benchmarkFig4Plot(b, "torus-random") }
func BenchmarkFig4RandomNLogN(b *testing.B)     { benchmarkFig4Plot(b, "random-nlogn") }
func BenchmarkFig4Mesh2D60(b *testing.B)        { benchmarkFig4Plot(b, "mesh2d60") }
func BenchmarkFig4Mesh3D40(b *testing.B)        { benchmarkFig4Plot(b, "mesh3d40") }
func BenchmarkFig4AD3(b *testing.B)             { benchmarkFig4Plot(b, "ad3") }
func BenchmarkFig4GeoFlat(b *testing.B)         { benchmarkFig4Plot(b, "geo-flat") }
func BenchmarkFig4GeoHier(b *testing.B)         { benchmarkFig4Plot(b, "geo-hier") }
func BenchmarkFig4ChainSequential(b *testing.B) { benchmarkFig4Plot(b, "chain-seq") }
func BenchmarkFig4ChainRandom(b *testing.B)     { benchmarkFig4Plot(b, "chain-random") }

// BenchmarkAblationNoSteal isolates the work-stealing mechanism (the
// paper's Fig. 2 load-imbalance discussion).
func BenchmarkAblationNoSteal(b *testing.B) {
	g := benchGraph("torus-rowmajor")
	p := benchProcs()[len(benchProcs())-1]
	b.Run("steal", func(b *testing.B) {
		runFindBench(b, g, Options{Algorithm: AlgWorkStealing, NumProcs: p, Seed: 1})
	})
	b.Run("nosteal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := findWS(g, p, wsToggles{noSteal: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationNoStub isolates the stub spanning tree seeding.
func BenchmarkAblationNoStub(b *testing.B) {
	g := benchGraph("torus-rowmajor")
	p := benchProcs()[len(benchProcs())-1]
	b.Run("stub", func(b *testing.B) {
		runFindBench(b, g, Options{Algorithm: AlgWorkStealing, NumProcs: p, Seed: 1})
	})
	b.Run("nostub", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := findWS(g, p, wsToggles{noStub: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationDeque compares the steal-half queue against the
// Chase-Lev steal-one deque on the star stress case.
func BenchmarkAblationDeque(b *testing.B) {
	g := benchGraph("star")
	p := benchProcs()[len(benchProcs())-1]
	b.Run("stealhalf", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := findWS(g, p, wsToggles{noStub: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("stealone", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := findWS(g, p, wsToggles{noStub: true, stealOne: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationChunk isolates the owner hot path's drain policy:
// fixed-1 reproduces the unbatched one-lock-op-per-vertex traversal,
// fixed-64 the statically batched drain, and adaptive the default
// per-worker controller that moves between the two regimes at run time.
func BenchmarkAblationChunk(b *testing.B) {
	g := benchGraph("torus-random")
	p := benchProcs()[len(benchProcs())-1]
	b.Run("fixed1", func(b *testing.B) {
		runFindBench(b, g, Options{Algorithm: AlgWorkStealing, NumProcs: p, Seed: 1, ChunkPolicy: ChunkFixed, ChunkSize: 1})
	})
	b.Run("fixed64", func(b *testing.B) {
		runFindBench(b, g, Options{Algorithm: AlgWorkStealing, NumProcs: p, Seed: 1, ChunkPolicy: ChunkFixed, ChunkSize: 64})
	})
	b.Run("adaptive", func(b *testing.B) {
		runFindBench(b, g, Options{Algorithm: AlgWorkStealing, NumProcs: p, Seed: 1})
	})
}

// BenchmarkAblationSVLock compares CAS elections against per-root locks
// in the SV baseline ("the locking approach intuitively is slow").
func BenchmarkAblationSVLock(b *testing.B) {
	g := benchGraph("fig3-random")
	p := benchProcs()[len(benchProcs())-1]
	b.Run("cas", func(b *testing.B) {
		runFindBench(b, g, Options{Algorithm: AlgSV, NumProcs: p})
	})
	b.Run("locks", func(b *testing.B) {
		runFindBench(b, g, Options{Algorithm: AlgSVLocks, NumProcs: p})
	})
}

// BenchmarkAblationDeg2 isolates the degree-2 elimination preprocessing
// on the pathological chain.
func BenchmarkAblationDeg2(b *testing.B) {
	g := benchGraph("chain-seq")
	p := benchProcs()[len(benchProcs())-1]
	b.Run("plain", func(b *testing.B) {
		runFindBench(b, g, Options{Algorithm: AlgWorkStealing, NumProcs: p, Seed: 1})
	})
	b.Run("deg2", func(b *testing.B) {
		runFindBench(b, g, Options{Algorithm: AlgWorkStealing, NumProcs: p, Seed: 1, Deg2Eliminate: true})
	})
}

// BenchmarkExtensions covers the future-work algorithms: parallel
// Borůvka MSF and random mating.
func BenchmarkExtensions(b *testing.B) {
	g := benchGraph("fig3-random")
	p := benchProcs()[len(benchProcs())-1]
	b.Run("boruvka", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := FindMST(g, p, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("randommating", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := FindRandomMating(g, p, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hybrid", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := FindHybrid(g, p, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGenerators measures the workload generators themselves.
func BenchmarkGenerators(b *testing.B) {
	kinds := []string{"torus2d", "mesh2d60", "mesh3d40", "random", "ad3", "geoflat", "geohier", "chain"}
	for _, kind := range kinds {
		b.Run(kind, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := gen.Generate(gen.Spec{Kind: kind, N: 1 << 12, Seed: uint64(i)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkVerify measures the independent verifier, which tools run
// after every algorithm.
func BenchmarkVerify(b *testing.B) {
	g := benchGraph("fig3-random")
	res, err := Find(g, Options{Algorithm: AlgSequentialBFS})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Verify(g, res.Parent); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBarrierLevelBFS contrasts the paper's O(1)-barrier traversal
// with the Θ(diameter)-barrier level-synchronous BFS (harness
// experiment abl-barriers, wall-clock counterpart).
func BenchmarkBarrierLevelBFS(b *testing.B) {
	g := benchGraph("torus-rowmajor")
	p := benchProcs()[len(benchProcs())-1]
	b.Run("workstealing", func(b *testing.B) {
		runFindBench(b, g, Options{Algorithm: AlgWorkStealing, NumProcs: p, Seed: 1})
	})
	b.Run("levelbfs", func(b *testing.B) {
		runFindBench(b, g, Options{Algorithm: AlgLevelBFS, NumProcs: p})
	})
}

// BenchmarkApplications measures the spanning-tree applications: the
// biconnected and ear decompositions from the paper's motivation, plus
// the tree-analysis toolkit.
func BenchmarkApplications(b *testing.B) {
	g := benchGraph("geo-hier")
	b.Run("biconnected", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if BiconnectedComponents(g).NumComponents == 0 {
				b.Fatal("no blocks")
			}
		}
	})
	b.Run("ears", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if Ears(g) == nil {
				b.Fatal("nil decomposition")
			}
		}
	})
	res, err := Find(g, Options{Algorithm: AlgSequentialBFS})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("treeops-analyze", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f, err := AnalyzeForest(res.Parent)
			if err != nil {
				b.Fatal(err)
			}
			if f.Height() == 0 {
				b.Fatal("flat tree")
			}
		}
	})
	b.Run("verify", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := Verify(g, res.Parent); err != nil {
				b.Fatal(err)
			}
		}
	})
}
