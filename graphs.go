package spantree

import (
	"io"

	"spantree/internal/gen"
	"spantree/internal/graph"
)

// Graph construction and workload generators re-exported from the
// internal packages, so downstream users need only this package. Each
// generator corresponds to one of the paper's experimental input
// classes (Section 4, "Experimental Data").

// NewGraph builds a graph with n vertices from an edge list; self-loops
// are dropped and duplicate edges removed.
func NewGraph(n int, edges []Edge) (*Graph, error) {
	return graph.FromEdges(n, edges)
}

// NewTorus2D returns the rows x cols torus with row-major labeling.
func NewTorus2D(rows, cols int) *Graph { return gen.Torus2D(rows, cols) }

// NewGrid2D returns the rows x cols grid (no wraparound).
func NewGrid2D(rows, cols int) *Graph { return gen.Grid2D(rows, cols) }

// NewMesh2D60 returns a side x side mesh with each lattice edge present
// with probability 60% (the paper's 2D60 inputs).
func NewMesh2D60(side int, seed uint64) *Graph { return gen.Mesh2D(side, side, 0.60, seed) }

// NewMesh3D40 returns a side^3 mesh with each lattice edge present with
// probability 40% (the paper's 3D40 inputs).
func NewMesh3D40(side int, seed uint64) *Graph { return gen.Mesh3D(side, side, side, 0.40, seed) }

// NewRandomGraph returns a G(n,m) random graph: m unique edges placed
// uniformly at random.
func NewRandomGraph(n, m int, seed uint64) *Graph { return gen.Random(n, m, seed) }

// NewConnectedRandomGraph returns a connected random graph with n
// vertices and max(m, n-1) edges.
func NewConnectedRandomGraph(n, m int, seed uint64) *Graph { return gen.RandomConnected(n, m, seed) }

// NewGeometricGraph returns the k-nearest-neighbor geometric graph of n
// uniform points in the unit square.
func NewGeometricGraph(n, k int, seed uint64) *Graph { return gen.Geometric(n, k, seed) }

// NewAD3 returns the k = 3 geometric graph (the paper's AD3 inputs).
func NewAD3(n int, seed uint64) *Graph { return gen.AD3(n, seed) }

// NewGeoFlat returns a flat-mode geographic (Waxman-style wide-area
// network) graph.
func NewGeoFlat(n int, seed uint64) *Graph { return gen.GeoFlat(n, gen.DefaultGeoFlatParams(), seed) }

// NewGeoHier returns a hierarchical-mode geographic graph
// (backbone / domains / subdomains).
func NewGeoHier(n int, seed uint64) *Graph { return gen.GeoHier(n, gen.DefaultGeoHierParams(), seed) }

// NewChain returns the degenerate chain graph, the paper's pathological
// low-connectivity input.
func NewChain(n int) *Graph { return gen.Chain(n) }

// NewStar returns the star graph with center 0.
func NewStar(n int) *Graph { return gen.Star(n) }

// RandomRelabel returns an isomorphic copy of g under a random vertex
// permutation — the paper's "random labeling" input variants, which
// expose the labeling sensitivity of Shiloach-Vishkin.
func RandomRelabel(g *Graph, seed uint64) *Graph { return graph.RandomRelabel(g, seed) }

// EliminateDegree2 exposes the degree-2 preprocessing step: it returns
// the reduced graph plus the bookkeeping needed to lift a reduced forest
// back to the original graph.
func EliminateDegree2(g *Graph) *Deg2Reduction { return graph.EliminateDegree2(g) }

// Deg2Reduction is the result of EliminateDegree2.
type Deg2Reduction = graph.Deg2Reduction

// WriteGraph writes g in the library's binary format.
func WriteGraph(w io.Writer, g *Graph) error { return graph.WriteBinary(w, g) }

// ReadGraph reads a graph written by WriteGraph.
func ReadGraph(r io.Reader) (*Graph, error) { return graph.ReadBinary(r) }

// WriteGraphText writes g as a plain-text edge list with a "# n m"
// header.
func WriteGraphText(w io.Writer, g *Graph) error { return graph.WriteText(w, g) }

// ReadGraphText reads the text format written by WriteGraphText.
func ReadGraphText(r io.Reader) (*Graph, error) { return graph.ReadText(r) }
