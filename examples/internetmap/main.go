// Internetmap: spanning trees over geographic wide-area-network
// topologies — the paper's Internet-modeling workload ("research on
// properties of wide-area networks model the structure of the Internet
// as a geographic graph").
//
// A spanning tree of a network map is a broadcast tree: it reaches every
// router exactly once. This example builds flat and hierarchical
// geographic graphs, computes broadcast trees rooted by the algorithm,
// and reports tree quality metrics a network engineer would look at
// (depth ~ broadcast latency, fan-out ~ replication load).
package main

import (
	"fmt"
	"log"
	"runtime"

	"spantree"
)

func main() {
	const n = 1 << 17
	p := runtime.GOMAXPROCS(0)

	for _, g := range []*spantree.Graph{
		spantree.NewGeoFlat(n, 2026),
		spantree.NewGeoHier(n, 2026),
	} {
		fmt.Printf("== %v (avg degree %.2f) ==\n", g, g.AvgDegree())

		res, err := spantree.Find(g, spantree.Options{
			Algorithm: spantree.AlgWorkStealing,
			NumProcs:  p,
			Seed:      7,
			Verify:    true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  broadcast forest: %d edges, %d components, computed in %v\n",
			res.TreeEdges, res.Roots, res.Elapsed)

		depth, maxFanout, leaves := treeShape(res.Parent)
		fmt.Printf("  max depth %d (broadcast hops), max fan-out %d, %d leaves\n",
			depth, maxFanout, leaves)

		// Compare against the PRAM baseline the paper measures.
		sv, err := spantree.Find(g, spantree.Options{
			Algorithm: spantree.AlgSV, NumProcs: p, Verify: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  Shiloach-Vishkin took %v (%d graft iterations) for the same forest\n",
			sv.Elapsed, sv.SV.Iterations)
	}
}

// treeShape computes the maximum depth, the maximum fan-out, and the
// leaf count of a parent-array forest in two O(n) passes.
func treeShape(parent []spantree.VID) (maxDepth, maxFanout, leaves int) {
	n := len(parent)
	children := make([]int, n)
	for _, pv := range parent {
		if pv != spantree.None {
			children[pv]++
		}
	}
	for v := 0; v < n; v++ {
		if children[v] == 0 {
			leaves++
		}
		if children[v] > maxFanout {
			maxFanout = children[v]
		}
	}
	// Depth via memoized parent walks.
	depth := make([]int32, n)
	for i := range depth {
		depth[i] = -1
	}
	var path []spantree.VID
	for v := 0; v < n; v++ {
		path = path[:0]
		cur := spantree.VID(v)
		for depth[cur] < 0 && parent[cur] != spantree.None {
			path = append(path, cur)
			cur = parent[cur]
		}
		base := int32(0)
		if depth[cur] >= 0 {
			base = depth[cur]
		} else {
			depth[cur] = 0
		}
		for i := len(path) - 1; i >= 0; i-- {
			base++
			depth[path[i]] = base
		}
		if int(base) > maxDepth {
			maxDepth = int(base)
		}
	}
	return maxDepth, maxFanout, leaves
}
