// Robustness: spanning trees as the building block for deeper graph
// analysis — the paper's opening motivation ("finding a spanning tree of
// a graph is an important building block for many graph algorithms, for
// example, biconnected components and ear decomposition").
//
// The example audits a hierarchical network topology: it finds the
// articulation points (single routers whose failure splits the network),
// the bridges (single links whose failure splits it), and the
// biconnected blocks (failure-resilient zones), then cross-checks one
// articulation point by actually failing it and re-running the parallel
// spanning-forest algorithm to count the resulting fragments.
package main

import (
	"fmt"
	"log"
	"runtime"

	"spantree"
)

func main() {
	const n = 1 << 15
	p := runtime.GOMAXPROCS(0)

	g := spantree.NewGeoHier(n, 4242)
	fmt.Printf("auditing %v (avg degree %.2f)\n", g, g.AvgDegree())

	bc := spantree.BiconnectedComponents(g)
	fmt.Printf("blocks: %d, articulation points: %d, bridges: %d\n",
		bc.NumComponents, len(bc.ArticulationPoints), len(bc.Bridges))
	frac := 100 * float64(len(bc.ArticulationPoints)) / float64(n)
	fmt.Printf("%.1f%% of routers are single points of failure\n", frac)

	if len(bc.ArticulationPoints) == 0 {
		fmt.Println("network is fully biconnected; nothing to fail over")
		return
	}

	// Fail the first articulation point and measure the damage with the
	// parallel spanning-forest algorithm: the number of tree roots is
	// the number of fragments.
	before, err := spantree.ConnectedComponentsCount(g, p, 1)
	if err != nil {
		log.Fatal(err)
	}
	victim := bc.ArticulationPoints[0]
	damaged := removeVertex(g, victim)
	after, err := spantree.ConnectedComponentsCount(damaged, p, 1)
	if err != nil {
		log.Fatal(err)
	}
	// The victim's own disappearance removes one vertex but its old
	// component splits: after > before (the victim itself is not counted
	// as a fragment because removeVertex keeps it as an isolated vertex,
	// adding exactly one extra component).
	fmt.Printf("components before failing router %d: %d\n", victim, before)
	fmt.Printf("components after (victim isolated): %d\n", after)
	if after <= before+1 {
		log.Fatalf("router %d was reported as an articulation point but its removal did not split the network", victim)
	}
	fmt.Printf("failure of router %d splits its zone into %d extra fragments — audit confirmed\n",
		victim, after-before-1)
}

// removeVertex returns a copy of g with all edges incident to v removed
// (v remains as an isolated vertex, keeping ids stable).
func removeVertex(g *spantree.Graph, v spantree.VID) *spantree.Graph {
	var edges []spantree.Edge
	for u := 0; u < g.NumVertices(); u++ {
		for _, w := range g.Neighbors(spantree.VID(u)) {
			if spantree.VID(u) < w && spantree.VID(u) != v && w != v {
				edges = append(edges, spantree.Edge{U: spantree.VID(u), V: w})
			}
		}
	}
	out, err := spantree.NewGraph(g.NumVertices(), edges)
	if err != nil {
		log.Fatal(err)
	}
	return out
}
