// Loadbalance: the pathological shapes from the paper's Section 2 —
// the load-imbalance scenario of Fig. 2 and the low-connectivity
// degenerate chain — and the two mechanisms the paper adds for them:
// work stealing and the idle-detection fallback to Shiloach-Vishkin.
//
// The example prints per-processor work distributions so the effect of
// each mechanism is directly visible.
package main

import (
	"fmt"
	"log"

	"spantree"
)

func main() {
	const n = 1 << 18
	const p = 8

	// A star is the extreme of Fig. 2: after the center is processed,
	// every leaf is reachable only through one queue. Work stealing
	// spreads the leaves; without it one processor colors almost
	// everything.
	star := spantree.NewStar(n)
	fmt.Printf("== %v ==\n", star)
	res, err := spantree.Find(star, spantree.Options{
		Algorithm: spantree.AlgWorkStealing, NumProcs: p, Seed: 3, Verify: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	report(res)

	// The degenerate chain is the paper's stated pathological case: the
	// frontier never holds more than a couple of vertices, so stealing
	// cannot help and idle processors starve.
	chain := spantree.NewChain(n)
	fmt.Printf("\n== %v (plain) ==\n", chain)
	res, err = spantree.Find(chain, spantree.Options{
		Algorithm: spantree.AlgWorkStealing, NumProcs: p, Seed: 3, Verify: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	report(res)

	// The paper's remedy #1: the detection mechanism. Sleeping
	// processors past the threshold abandon the traversal and finish
	// with a Shiloach-Vishkin pass over the contracted graph.
	fmt.Printf("\n== %v (idle detection + SV fallback) ==\n", chain)
	res, err = spantree.Find(chain, spantree.Options{
		Algorithm: spantree.AlgWorkStealing, NumProcs: p, Seed: 3,
		FallbackThreshold: p / 2, Verify: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	report(res)

	// The paper's remedy #2: degree-2 elimination preprocessing, which
	// collapses the chain before the traversal even starts.
	fmt.Printf("\n== %v (degree-2 elimination) ==\n", chain)
	res, err = spantree.Find(chain, spantree.Options{
		Algorithm: spantree.AlgWorkStealing, NumProcs: p, Seed: 3,
		Deg2Eliminate: true, Verify: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	report(res)
}

func report(res *spantree.Result) {
	ws := res.WorkStealing
	fmt.Printf("time %v, %d tree edges, verified\n", res.Elapsed, res.TreeEdges)
	fmt.Printf("vertices claimed per processor: %v\n", ws.VerticesPerProc)
	fmt.Printf("imbalance %.2f, steals %d (moved %d vertices), claim races %d\n",
		ws.MaxLoadImbalance(), ws.Steals, ws.StolenVertices, ws.FailedClaims)
	if ws.FallbackTriggered {
		fmt.Printf("fallback: triggered; SV finished the tree with %d grafts in %d iterations\n",
			ws.SVStats.Grafts, ws.SVStats.Iterations)
	}
	if ws.Deg2Eliminated > 0 {
		fmt.Printf("preprocessing eliminated %d degree-2 vertices\n", ws.Deg2Eliminated)
	}
}
