// Quickstart: generate a graph, find a spanning tree in parallel with
// the work-stealing algorithm, verify it, and inspect the result.
package main

import (
	"fmt"
	"log"
	"runtime"

	"spantree"
)

func main() {
	// A connected random graph with 1M vertices and 1.5M edges — the
	// density of the paper's Fig. 3 experiment.
	const n = 1 << 20
	g := spantree.NewConnectedRandomGraph(n, 3*n/2, 42)
	fmt.Printf("input: %v\n", g)

	// Find a spanning tree with the paper's algorithm on all cores.
	res, err := spantree.Find(g, spantree.Options{
		Algorithm: spantree.AlgWorkStealing,
		NumProcs:  runtime.GOMAXPROCS(0),
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("found a spanning tree with %d edges in %v\n", res.TreeEdges, res.Elapsed)

	// Parent pointers encode the tree: follow any vertex to the root.
	v := spantree.VID(n - 1)
	depth := 0
	for res.Parent[v] != spantree.None {
		v = res.Parent[v]
		depth++
	}
	fmt.Printf("vertex %d sits at depth %d under root %d\n", n-1, depth, v)

	// Results are cheap to verify independently.
	if err := spantree.Verify(g, res.Parent); err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	fmt.Println("verified: output is a spanning tree of the input")

	// The statistics show the load balance the work-stealing step
	// achieved (1.0 = perfectly even).
	ws := res.WorkStealing
	fmt.Printf("load imbalance %.3f across %d processors, %d steals, %d claim races\n",
		ws.MaxLoadImbalance(), len(ws.VerticesPerProc), ws.Steals, ws.FailedClaims)
}
