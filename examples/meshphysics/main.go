// Meshphysics: spanning trees over the mesh graphs of physics-based
// simulations — the computational-science workload the paper's
// introduction motivates ("computational science applications for
// physics-based simulations and computer vision commonly use mesh-based
// graphs").
//
// The example builds the paper's three mesh families (2D torus, 2D60,
// 3D40), uses the spanning forest of the irregular meshes to count and
// size the connected "material regions" (as a vision/simulation code
// would label connected cells), and compares the work-stealing algorithm
// with sequential traversal on each.
package main

import (
	"fmt"
	"log"
	"runtime"
	"sort"

	"spantree"
)

func main() {
	const side = 512 // 262,144 vertices per 2D mesh
	p := runtime.GOMAXPROCS(0)

	meshes := []*spantree.Graph{
		spantree.NewTorus2D(side, side),
		spantree.NewMesh2D60(side, 7),
		spantree.NewMesh3D40(64, 7), // 262,144 vertices
	}

	for _, g := range meshes {
		fmt.Printf("== %v (avg degree %.2f) ==\n", g, g.AvgDegree())

		seq, err := spantree.Find(g, spantree.Options{Algorithm: spantree.AlgSequentialBFS})
		if err != nil {
			log.Fatal(err)
		}
		par, err := spantree.Find(g, spantree.Options{
			Algorithm: spantree.AlgWorkStealing,
			NumProcs:  p,
			Seed:      99,
			Verify:    true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  sequential BFS:     %v\n", seq.Elapsed)
		fmt.Printf("  work-stealing p=%d:  %v (verified)\n", p, par.Elapsed)

		// Region labeling: every tree root identifies one connected
		// region of the mesh; region sizes fall out of the parent array.
		labels, count, err := spantree.ConnectedComponents(g, p, 99)
		if err != nil {
			log.Fatal(err)
		}
		sizes := make([]int, count)
		for _, c := range labels {
			sizes[c]++
		}
		sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
		fmt.Printf("  regions: %d; largest: %d cells (%.1f%% of the mesh)\n",
			count, sizes[0], 100*float64(sizes[0])/float64(g.NumVertices()))
		if count > 1 {
			small := 0
			for _, s := range sizes[1:] {
				small += s
			}
			fmt.Printf("  disconnected debris: %d cells in %d fragments\n", small, count-1)
		}
	}
}
