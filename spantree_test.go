package spantree

import (
	"fmt"
	"testing"

	"spantree/internal/gen"
	"spantree/internal/graph"
	"spantree/internal/smpmodel"
)

// testGraphs returns a matrix of small instances covering every
// generator family and several adversarial shapes.
func testGraphs(tb testing.TB) []*Graph {
	tb.Helper()
	gs := []*Graph{
		gen.Torus2D(8, 8),
		gen.Torus2D(1, 1),
		gen.Grid2D(5, 13),
		gen.Mesh2D(12, 12, 0.60, 7),
		gen.Mesh3D(5, 5, 5, 0.40, 7),
		gen.Random(200, 300, 1),
		gen.Random(100, 0, 1), // edgeless
		gen.RandomConnected(257, 400, 2),
		gen.Geometric(150, 4, 3),
		gen.AD3(120, 4),
		gen.GeoFlat(300, gen.DefaultGeoFlatParams(), 5),
		gen.GeoHier(300, gen.DefaultGeoHierParams(), 6),
		gen.Chain(100),
		gen.Chain(1),
		gen.Chain(0),
		gen.Chain(2),
		gen.Star(64),
		gen.Cycle(50),
		gen.Complete(20),
		gen.BinaryTree(63),
		gen.Caterpillar(41),
		graph.Union(gen.Chain(10), gen.Star(5), gen.Cycle(7), gen.Random(20, 30, 9)),
		graph.RandomRelabel(gen.Torus2D(8, 8), 11),
		graph.RandomRelabel(gen.Chain(100), 12),
	}
	for _, g := range gs {
		if err := g.Validate(); err != nil {
			tb.Fatalf("test input %v invalid: %v", g, err)
		}
	}
	return gs
}

func TestAllAlgorithmsProduceValidForests(t *testing.T) {
	for _, g := range testGraphs(t) {
		for _, alg := range Algorithms() {
			for _, p := range []int{1, 2, 4, 7} {
				if alg == AlgSequentialBFS || alg == AlgSequentialDFS || alg == AlgSequentialUF {
					if p != 1 {
						continue
					}
				}
				name := fmt.Sprintf("%v/%v/p=%d", g, alg, p)
				res, err := Find(g, Options{Algorithm: alg, NumProcs: p, Seed: 42, Verify: true})
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				wantRoots := graph.NumComponents(g)
				if res.Roots != wantRoots {
					t.Errorf("%s: got %d roots, want %d components", name, res.Roots, wantRoots)
				}
				if res.TreeEdges != g.NumVertices()-wantRoots {
					t.Errorf("%s: got %d tree edges, want %d", name, res.TreeEdges, g.NumVertices()-wantRoots)
				}
			}
		}
	}
}

func TestWorkStealingWithDeg2AndFallback(t *testing.T) {
	for _, g := range testGraphs(t) {
		for _, opt := range []Options{
			{Algorithm: AlgWorkStealing, NumProcs: 4, Deg2Eliminate: true, Seed: 1, Verify: true},
			{Algorithm: AlgWorkStealing, NumProcs: 4, FallbackThreshold: 2, Seed: 1, Verify: true},
			{Algorithm: AlgWorkStealing, NumProcs: 3, Deg2Eliminate: true, FallbackThreshold: 1, Seed: 9, Verify: true},
		} {
			res, err := Find(g, opt)
			if err != nil {
				t.Fatalf("%v deg2=%v fb=%d: %v", g, opt.Deg2Eliminate, opt.FallbackThreshold, err)
			}
			if res.Roots != graph.NumComponents(g) {
				t.Errorf("%v: got %d roots, want %d", g, res.Roots, graph.NumComponents(g))
			}
		}
	}
}

func TestFindRejectsBadInput(t *testing.T) {
	if _, err := Find(nil, Options{}); err == nil {
		t.Error("Find(nil) should fail")
	}
	g := gen.Chain(4)
	if _, err := Find(g, Options{NumProcs: -1}); err == nil {
		t.Error("Find with negative NumProcs should fail")
	}
	if _, err := Find(g, Options{Algorithm: Algorithm(99)}); err == nil {
		t.Error("Find with unknown algorithm should fail")
	}
}

func TestParseAlgorithmRoundTrip(t *testing.T) {
	for _, a := range Algorithms() {
		got, err := ParseAlgorithm(a.String())
		if err != nil {
			t.Fatalf("ParseAlgorithm(%q): %v", a.String(), err)
		}
		if got != a {
			t.Errorf("round trip %v != %v", got, a)
		}
	}
	if _, err := ParseAlgorithm("nope"); err == nil {
		t.Error("ParseAlgorithm(nope) should fail")
	}
}

func TestConnectedComponentsAPI(t *testing.T) {
	g := graph.Union(gen.Chain(10), gen.Cycle(8), gen.Star(6))
	labels, count, err := ConnectedComponents(g, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("got %d components, want 3", count)
	}
	ref, refCount := graph.Components(g)
	if refCount != count {
		t.Fatalf("reference count %d != %d", refCount, count)
	}
	// Labelings must induce the same partition.
	seen := map[VID]VID{}
	for v := range labels {
		if ref[v] < 0 {
			t.Fatalf("reference label missing for %d", v)
		}
		if prev, ok := seen[labels[v]]; ok {
			if prev != ref[v] {
				t.Fatalf("vertex %d: label %d maps to both ref %d and %d", v, labels[v], prev, ref[v])
			}
		} else {
			seen[labels[v]] = ref[v]
		}
	}
}

func TestFindWithModelChargesEveryAlgorithm(t *testing.T) {
	g := gen.RandomConnected(400, 600, 5)
	seqModel := smpmodel.New(1)
	if _, err := Find(g, Options{Algorithm: AlgSequentialBFS, Model: seqModel}); err != nil {
		t.Fatal(err)
	}
	seqNC := seqModel.Total().NonContig
	if seqNC == 0 {
		t.Fatal("sequential run charged nothing")
	}
	for _, alg := range Algorithms() {
		model := smpmodel.New(4)
		res, err := Find(g, Options{Algorithm: alg, NumProcs: 4, Seed: 2, Model: model, Verify: true})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if res.Elapsed <= 0 {
			t.Fatalf("%v: no elapsed time", alg)
		}
		if model.Total().NonContig == 0 {
			t.Fatalf("%v: no cost charged", alg)
		}
		if model.Time(smpmodel.E4500()) <= 0 {
			t.Fatalf("%v: no modeled time", alg)
		}
	}
}

func TestResultStatsPopulated(t *testing.T) {
	g := gen.RandomConnected(300, 500, 6)
	cases := map[Algorithm]func(*Result) bool{
		AlgWorkStealing:     func(r *Result) bool { return r.WorkStealing != nil },
		AlgSV:               func(r *Result) bool { return r.SV != nil && r.SV.Grafts == 299 },
		AlgSVLocks:          func(r *Result) bool { return r.SV != nil },
		AlgHCS:              func(r *Result) bool { return r.HCS != nil },
		AlgAwerbuchShiloach: func(r *Result) bool { return r.AS != nil },
		AlgLevelBFS:         func(r *Result) bool { return r.LevelBFS != nil && r.LevelBFS.Levels > 0 },
	}
	for alg, check := range cases {
		res, err := Find(g, Options{Algorithm: alg, NumProcs: 3, Seed: 1})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if !check(res) {
			t.Fatalf("%v: stats not populated", alg)
		}
	}
}
