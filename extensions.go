package spantree

import (
	"fmt"
	"time"

	"spantree/internal/bicc"
	"spantree/internal/boruvka"
	"spantree/internal/ears"
	"spantree/internal/graph"
	"spantree/internal/spanrm"
	"spantree/internal/treeops"
	"spantree/internal/verify"
)

// Extensions beyond the paper's headline algorithm: the random-mating
// baseline family from the related experimental studies, and the
// parallel Borůvka minimum-spanning-forest algorithm from the paper's
// future-work list.

// FindRandomMating computes a spanning forest with the random-mating
// (Reif/Phillips-style) algorithm using p virtual processors.
func FindRandomMating(g *Graph, p int, seed uint64) (*Result, error) {
	if g == nil {
		return nil, fmt.Errorf("spantree: nil graph")
	}
	if p < 1 {
		p = 1
	}
	start := time.Now()
	parent, st, err := spanrm.SpanningForest(g, spanrm.Options{NumProcs: p, Seed: seed})
	if err != nil {
		return nil, err
	}
	res := &Result{Parent: parent, Elapsed: time.Since(start)}
	for _, pv := range parent {
		if pv == None {
			res.Roots++
		}
	}
	res.TreeEdges = len(parent) - res.Roots
	res.RandomMating = &st
	return res, nil
}

// WeightFunc assigns a symmetric weight to an undirected edge.
type WeightFunc = boruvka.WeightFunc

// MSTResult is the outcome of FindMST.
type MSTResult struct {
	// Parent is the minimum spanning forest as a parent array.
	Parent []VID
	// TotalWeight is the sum of the selected edges' weights.
	TotalWeight float64
	// Rounds is the number of Borůvka rounds.
	Rounds int
	// TreeEdges is the number of forest edges.
	TreeEdges int
	// Elapsed is the wall-clock running time.
	Elapsed time.Duration
}

// FindMST computes a minimum spanning forest of g with parallel Borůvka
// on p virtual processors. A nil weight function selects deterministic
// pseudo-random weights (a reproducible random spanning forest).
func FindMST(g *Graph, p int, weight WeightFunc) (*MSTResult, error) {
	if g == nil {
		return nil, fmt.Errorf("spantree: nil graph")
	}
	if p < 1 {
		p = 1
	}
	start := time.Now()
	parent, st, err := boruvka.MinimumSpanningForest(g, boruvka.Options{NumProcs: p, Weight: weight})
	if err != nil {
		return nil, err
	}
	if err := verify.Forest(g, parent); err != nil {
		return nil, fmt.Errorf("spantree: Borůvka produced an invalid forest: %w", err)
	}
	return &MSTResult{
		Parent:      parent,
		TotalWeight: st.TotalWeight,
		Rounds:      st.Rounds,
		TreeEdges:   st.TreeEdges,
		Elapsed:     time.Since(start),
	}, nil
}

// ReferenceMST returns the Kruskal reference minimum spanning forest's
// edges and total weight, for validating FindMST results in tests and
// benchmarks.
func ReferenceMST(g *Graph, weight WeightFunc) ([]Edge, float64) {
	return boruvka.SequentialMSF(g, weight)
}

// PseudoDiameter returns a lower bound on g's diameter from a
// double-BFS sweep starting at the given vertex.
func PseudoDiameter(g *Graph, start VID) int {
	return graph.PseudoDiameter(g, start)
}

// Biconnected is the biconnected decomposition of a graph: blocks,
// articulation points and bridges. Spanning trees are the building
// block the paper motivates with exactly this problem.
type Biconnected = bicc.Result

// BiconnectedComponents computes the biconnected decomposition of g
// (blocks, articulation points, bridges) via a DFS spanning tree.
func BiconnectedComponents(g *Graph) *Biconnected {
	return bicc.Compute(g)
}

// EarChain is one chain of an ear (chain) decomposition.
type EarChain = ears.Chain

// EarDecomposition is a Schmidt chain decomposition of a graph. On
// 2-edge-connected inputs the chains form an ear decomposition.
type EarDecomposition = ears.Decomposition

// Ears computes the chain (ear) decomposition of g over a DFS spanning
// tree. Edges on no chain are exactly the bridges of g.
func Ears(g *Graph) *EarDecomposition { return ears.Compute(g) }

// TwoEdgeConnected reports whether g is connected and bridgeless.
func TwoEdgeConnected(g *Graph) bool { return ears.TwoEdgeConnected(g) }

// IsBiconnected reports whether g is biconnected (connected with no
// articulation points), by Schmidt's chain criterion.
func IsBiconnected(g *Graph) bool { return ears.Biconnected(g) }

// Tree is an analyzed spanning forest with precomputed depths, orders
// and (after EnableLCA) ancestor tables — the downstream toolkit for
// using spanning trees as a building block.
type Tree = treeops.Forest

// AnalyzeForest validates a parent array and precomputes its tree
// structure for depth/LCA/subtree queries.
func AnalyzeForest(parent []VID) (*Tree, error) { return treeops.New(parent) }

// RerootTree returns a copy of the forest with newRoot as its tree's
// root.
func RerootTree(parent []VID, newRoot VID) []VID { return treeops.Reroot(parent, newRoot) }

// FindHybrid computes a spanning forest with Greiner's hybrid strategy:
// a few labeling-insensitive random-mating rounds contract the graph,
// then Shiloach-Vishkin finishes the residue.
func FindHybrid(g *Graph, p int, seed uint64) (*Result, error) {
	if g == nil {
		return nil, fmt.Errorf("spantree: nil graph")
	}
	if p < 1 {
		p = 1
	}
	start := time.Now()
	parent, _, err := spanrm.HybridSpanningForest(g, spanrm.HybridOptions{NumProcs: p, Seed: seed})
	if err != nil {
		return nil, err
	}
	res := &Result{Parent: parent, Elapsed: time.Since(start)}
	for _, pv := range parent {
		if pv == None {
			res.Roots++
		}
	}
	res.TreeEdges = len(parent) - res.Roots
	return res, nil
}
