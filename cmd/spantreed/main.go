// Command spantreed serves spanning trees over HTTP: a registry of
// named graphs, each backed by a pool of warmed zero-allocation
// sessions, with bounded-in-flight admission control. See
// internal/serve for the API.
package main

import (
	"fmt"
	"os"

	"spantree/internal/cli"
)

func main() {
	if err := cli.RunSpanTreeD(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "spantreed:", err)
		os.Exit(1)
	}
}
