// Command benchfig regenerates the paper's experimental figures
// (Fig. 3 and every plot of Fig. 4) plus the ablation studies, printing
// the series each plot graphs as a table and checking the paper's
// shape-level claims against the measured data.
//
// Usage:
//
//	benchfig -fig all                 # everything, modeled, quick scale
//	benchfig -fig 3                   # Fig. 3 only
//	benchfig -fig 4                   # all Fig. 4 plots
//	benchfig -fig fig4-torus-random   # one plot by id
//	benchfig -list                    # list experiment ids
//	benchfig -fig 3 -scale 1048576    # paper-scale input (n = 1M)
//	benchfig -fig 3 -mode wallclock   # real timing (multi-core hosts)
//	benchfig -csv                     # machine-readable output
package main

import (
	"fmt"
	"os"

	"spantree/internal/cli"
)

func main() {
	if err := cli.RunBenchFig(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(1)
	}
}
