// Command spantree generates or loads a graph, runs a chosen
// spanning-tree algorithm on it, verifies the result, and reports
// timing, statistics and (optionally) Helman-JáJá modeled cost.
//
// Examples:
//
//	spantree -gen random -n 1048576 -m 1572864 -algo workstealing -p 8
//	spantree -gen torus2d -n 1048576 -algo sv -p 4 -randlabel
//	spantree -in graph.bin -algo seqbfs
//	spantree -gen chain -n 100000 -algo workstealing -p 8 -fallback 4 -model
//	spantree -gen ad3 -n 65536 -out ad3.bin   # generate only
package main

import (
	"fmt"
	"os"

	"spantree/internal/cli"
)

func main() {
	if err := cli.RunSpanTree(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "spantree: %v\n", err)
		os.Exit(1)
	}
}
