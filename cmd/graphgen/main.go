// Command graphgen generates any of the paper's workload graphs and
// writes it to a file in the library's binary format or as a plain-text
// edge list.
//
// Examples:
//
//	graphgen -kind torus2d -n 1048576 -out torus.bin
//	graphgen -kind geohier -n 65536 -format text -out geo.txt
//	graphgen -kind random -n 100000 -m 150000 -seed 7 -randlabel -out r.bin
//	graphgen -kind ad3 -n 4096 -stats            # print stats, write nothing
package main

import (
	"fmt"
	"os"

	"spantree/internal/cli"
)

func main() {
	if err := cli.RunGraphGen(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
		os.Exit(1)
	}
}
