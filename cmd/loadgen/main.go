// Command loadgen drives a running spantreed instance with closed- or
// open-loop load, reports p50/p99/p999 latency, and writes the
// versioned serving benchmark artifact cmd/benchcmp gates in CI.
package main

import (
	"fmt"
	"os"

	"spantree/internal/cli"
)

func main() {
	if err := cli.RunLoadGen(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}
