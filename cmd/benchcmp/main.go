// Command benchcmp compares a freshly measured metrics artifact (the
// spantree/obs/v1 JSON written by benchfig -metrics or spantree
// -metrics) against a checked-in baseline and exits non-zero when
// wall-clock time or the steal hit rate regresses beyond a tolerance.
// It is the regression gate of the bench-smoke CI job and the nightly
// paper-scale pipeline.
//
// Baselines:
//
//	results/BENCH_nightly_baseline.json   obs artifact, label-matched
//	results/BENCH_hotpath.json            hot-path record, family-matched
//
// Usage:
//
//	benchcmp -baseline results/BENCH_nightly_baseline.json -current /tmp/metrics.json
//	benchcmp -baseline results/BENCH_hotpath.json -current /tmp/metrics.json -wall-tol 3.0
package main

import (
	"fmt"
	"os"

	"spantree/internal/cli"
)

func main() {
	if err := cli.RunBenchCmp(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
		os.Exit(1)
	}
}
