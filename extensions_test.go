package spantree

import (
	"math"
	"testing"

	"spantree/internal/gen"
	"spantree/internal/graph"
)

func TestFindMST(t *testing.T) {
	g := NewConnectedRandomGraph(500, 900, 3)
	res, err := FindMST(g, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.TreeEdges != 499 {
		t.Fatalf("MST edges = %d, want 499", res.TreeEdges)
	}
	_, wantWeight := ReferenceMST(g, nil)
	if math.Abs(res.TotalWeight-wantWeight) > 1e-9 {
		t.Fatalf("MST weight %v, Kruskal reference %v", res.TotalWeight, wantWeight)
	}
	if res.Rounds < 1 {
		t.Fatal("no Borůvka rounds recorded")
	}
	if err := Verify(g, res.Parent); err != nil {
		t.Fatal(err)
	}
	if _, err := FindMST(nil, 2, nil); err == nil {
		t.Fatal("nil graph accepted")
	}
}

func TestFindMSTCustomWeights(t *testing.T) {
	g := NewTorus2D(8, 8)
	// Weight = canonical edge id order: the MST prefers low-id edges.
	w := func(u, v VID) float64 {
		e := Edge{U: u, V: v}.Canon()
		return float64(e.U)*1e6 + float64(e.V)
	}
	res, err := FindMST(g, 3, w)
	if err != nil {
		t.Fatal(err)
	}
	edges, want := ReferenceMST(g, w)
	if len(edges) != res.TreeEdges {
		t.Fatalf("edge count %d vs reference %d", res.TreeEdges, len(edges))
	}
	if math.Abs(res.TotalWeight-want) > 1e-6 {
		t.Fatalf("weight %v vs reference %v", res.TotalWeight, want)
	}
}

func TestFindRandomMating(t *testing.T) {
	g := graph.Union(gen.Chain(40), gen.Cycle(30), gen.Star(20))
	res, err := FindRandomMating(g, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, res.Parent); err != nil {
		t.Fatal(err)
	}
	if res.Roots != 3 {
		t.Fatalf("roots = %d, want 3", res.Roots)
	}
	if res.RandomMating == nil || res.RandomMating.Rounds == 0 {
		t.Fatal("random-mating stats missing")
	}
	if _, err := FindRandomMating(nil, 2, 1); err == nil {
		t.Fatal("nil graph accepted")
	}
}

func TestBiconnectedComponentsAPI(t *testing.T) {
	g := NewChain(6)
	bc := BiconnectedComponents(g)
	if bc.NumComponents != 5 || len(bc.Bridges) != 5 {
		t.Fatalf("chain blocks=%d bridges=%d", bc.NumComponents, len(bc.Bridges))
	}
	if !bc.IsArticulation(2) || bc.IsArticulation(0) {
		t.Fatal("articulation classification wrong")
	}
}

func TestConnectedComponentsCount(t *testing.T) {
	g := graph.Union(gen.Chain(5), gen.Chain(5))
	count, err := ConnectedComponentsCount(g, 2, 1)
	if err != nil || count != 2 {
		t.Fatalf("count=%d err=%v", count, err)
	}
}

func TestPseudoDiameterAPI(t *testing.T) {
	if d := PseudoDiameter(NewChain(100), 50); d != 99 {
		t.Fatalf("chain pseudo-diameter %d", d)
	}
}

func TestEarsAPI(t *testing.T) {
	g := NewTorus2D(6, 6)
	d := Ears(g)
	if len(d.Bridges) != 0 {
		t.Fatal("torus has no bridges")
	}
	total := 0
	for _, c := range d.Chains {
		total += len(c) - 1
	}
	if total != g.NumEdges() {
		t.Fatalf("chains cover %d edges, want %d", total, g.NumEdges())
	}
	if !TwoEdgeConnected(g) || !IsBiconnected(g) {
		t.Fatal("torus misclassified")
	}
	if TwoEdgeConnected(NewChain(5)) {
		t.Fatal("chain misclassified")
	}
}

func TestFindHybrid(t *testing.T) {
	g := graph.Union(gen.Torus2D(8, 8), gen.Chain(20))
	res, err := FindHybrid(g, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, res.Parent); err != nil {
		t.Fatal(err)
	}
	if res.Roots != 2 {
		t.Fatalf("roots = %d, want 2", res.Roots)
	}
	if _, err := FindHybrid(nil, 1, 0); err == nil {
		t.Fatal("nil graph accepted")
	}
}
